"""Blowfish workload (MiBench security/blowfish analogue).

The Feistel core of Blowfish: 16 rounds of ``xl ^= P[i]; xr ^= F(xl)``
with ``F(x) = ((S0[a] + S1[b]) ^ S2[c]) + S3[d]`` over four S-box
lookups per round.  The 16-round loop has a constant bound, so -O3
unrolls it into a long add/xor chain interleaved with (ungroupable)
loads — a classic crypto ISE scenario.

The paper's benchmark uses the real pi-digit S-boxes; they are 4 KiB of
constants, so this reproduction fills the boxes from a deterministic
xorshift PRNG instead.  The dataflow, table sizes and round structure
are identical, which is what the exploration algorithm sees.
:func:`reference` mirrors the arithmetic bit-exactly.
"""

from ..ir.builder import FunctionBuilder
from ..ir.program import DataSegment, Program

_MASK = 0xFFFFFFFF

ROUNDS = 16
BLOCK_COUNT = 8


def _prng_words(seed, count):
    state = seed
    words = []
    for __ in range(count):
        state = (state ^ (state << 13)) & _MASK
        state = (state ^ (state >> 7)) & _MASK
        state = (state ^ (state << 17)) & _MASK
        words.append(state)
    return words


def p_array():
    """18-entry P-array (deterministic stand-in for the pi digits)."""
    return _prng_words(0x243F6A88, ROUNDS + 2)


def s_boxes():
    """Four 256-entry S-boxes."""
    return [_prng_words(0x85A308D3 + box, 256) for box in range(4)]


def input_blocks(count=BLOCK_COUNT):
    """(xl, xr) plaintext pairs."""
    words = _prng_words(0x13198A2E, 2 * count)
    return list(zip(words[0::2], words[1::2]))


def build(count=BLOCK_COUNT):
    """Build the encryptor program; returns ``(Program, args)``."""
    data = DataSegment()
    p_base = data.place_words("P", p_array())
    boxes = s_boxes()
    s_bases = [data.place_words("S{}".format(i), boxes[i]) for i in range(4)]
    flat = [w for pair in input_blocks(count) for w in pair]
    blocks = data.place_words("blocks", flat)

    b = FunctionBuilder(
        "bf_encrypt",
        params=("blocks", "nblocks", "p", "s0", "s1", "s2", "s3"))
    b.label("entry")
    b.li(0, dest="zero")
    b.li(0, dest="blk")
    b.li(0, dest="acc")
    b.jump("block_loop")

    b.label("block_loop")
    boff = b.sll("blk", 3)
    base = b.addu("blocks", boff)
    b.lw(base, 0, dest="xl")
    b.lw(base, 4, dest="xr")
    b.move(base, dest="baddr")
    b.li(0, dest="round")
    b.jump("round_loop")

    # 16 constant trips — unrolled at -O3.
    b.label("round_loop")
    poff = b.sll("round", 2)
    p_i = b.lw(b.addu("p", poff))
    b.xor("xl", p_i, dest="xl")
    # F(xl)
    a_idx = b.srl("xl", 24)
    b_raw = b.srl("xl", 16)
    b_idx = b.andi(b_raw, 0xFF)
    c_raw = b.srl("xl", 8)
    c_idx = b.andi(c_raw, 0xFF)
    d_idx = b.andi("xl", 0xFF)
    s0v = b.lw(b.addu("s0", b.sll(a_idx, 2)))
    s1v = b.lw(b.addu("s1", b.sll(b_idx, 2)))
    s2v = b.lw(b.addu("s2", b.sll(c_idx, 2)))
    s3v = b.lw(b.addu("s3", b.sll(d_idx, 2)))
    f1 = b.addu(s0v, s1v)
    f2 = b.xor(f1, s2v)
    f3 = b.addu(f2, s3v)
    b.xor("xr", f3, dest="xr")
    # swap halves
    b.move("xl", dest="tmp")
    b.move("xr", dest="xl")
    b.move("tmp", dest="xr")
    b.addiu("round", 1, dest="round")
    t = b.slti("round", ROUNDS)
    b.bne(t, "zero", "round_loop", "final_xor")

    b.label("final_xor")
    # undo last swap, apply P[16], P[17]
    b.move("xl", dest="tmp")
    b.move("xr", dest="xl")
    b.move("tmp", dest="xr")
    p16 = b.lw("p", 16 * 4)
    p17 = b.lw("p", 17 * 4)
    b.xor("xr", p16, dest="xr")
    b.xor("xl", p17, dest="xl")
    b.sw("xl", "baddr", 0)
    b.sw("xr", "baddr", 4)
    mix = b.xor("xl", "xr")
    rot = b.sll("acc", 1)
    hi = b.srl("acc", 31)
    rolled = b.or_(rot, hi)
    b.xor(rolled, mix, dest="acc")
    b.addiu("blk", 1, dest="blk")
    t2 = b.sltu("blk", "nblocks")
    b.bne(t2, "zero", "block_loop", "finish")

    b.label("finish")
    b.ret("acc")

    program = Program("blowfish", data=data)
    program.add_function(b.finish())
    args = (blocks, count, p_base) + tuple(s_bases)
    return program, args


def reference(count=BLOCK_COUNT):
    """Bit-exact mirror; returns the ciphertext checksum."""
    p = p_array()
    s = s_boxes()
    acc = 0
    for xl, xr in input_blocks(count):
        for i in range(ROUNDS):
            xl ^= p[i]
            f = ((s[0][xl >> 24] + s[1][(xl >> 16) & 0xFF]) & _MASK)
            f = (f ^ s[2][(xl >> 8) & 0xFF])
            f = (f + s[3][xl & 0xFF]) & _MASK
            xr ^= f
            xl, xr = xr, xl
        xl, xr = xr, xl
        xr ^= p[16]
        xl ^= p[17]
        mix = xl ^ xr
        acc = (((acc << 1) | (acc >> 31)) ^ mix) & _MASK
    return acc
