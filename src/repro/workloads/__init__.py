"""The seven §5.1 benchmarks, written as IR kernels."""

from .registry import (
    Workload,
    all_workloads,
    extra_workloads,
    get_workload,
    workload_names,
)

__all__ = ["Workload", "all_workloads", "extra_workloads", "get_workload",
           "workload_names"]
