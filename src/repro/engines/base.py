"""The ``Explorer`` protocol: what every search engine must provide.

The paper's ACO search is one point in a crowded design space — ISEGEN
grows ISEs by Kernighan-Lin-style iterative improvement, greedy cone
growth is the classic Clark baseline, genetic search is the generic
black-box contender.  This module pins down the contract that lets them
race interchangeably:

* :class:`ExplorerEngine` — the abstract base every engine derives
  from.  It owns the shared substrate: machine/constraint clamping,
  the per-engine :class:`~repro.core.evalcache.EvalCache`, observer
  wiring, and the **deterministic candidate evaluation**
  (:meth:`ExplorerEngine._evaluate`) all engines must score through;
* :class:`EvalBudget` — an evaluation meter threaded through
  ``_evaluate``: cache hits are free, every *uncached* evaluation
  charges one unit, and the budget raises
  :class:`~repro.errors.BudgetExhausted` once spent.  Because every
  engine scores candidates through the same metered evaluator, "equal
  budgets" means equal amounts of the one expensive operation —
  contraction + list scheduling — regardless of how an engine searches;
* :class:`EngineStats` — a uniform counters snapshot (uncached
  evaluations, cache hits/misses) the tournament harness reads;
* the **registry** — a string-keyed table (:func:`register` /
  :func:`available` / :func:`create`) the public API resolves
  ``engine="..."`` through.  Built-in engines register lazily so
  importing :mod:`repro` never pays for engines it does not run.

:class:`ExplorationResult` also lives here: it is the common return
type of every engine's :meth:`~ExplorerEngine.explore`, not an ACO
artefact.
"""

import importlib
from dataclasses import dataclass

from ..config import DEFAULT_CONSTRAINTS, DEFAULT_PARAMS
from ..errors import BudgetExhausted, ConfigError, ReproError
from ..hwlib.database import DEFAULT_DATABASE
from ..hwlib.options import default_io_table
from ..hwlib.technology import DEFAULT_TECHNOLOGY
from ..obs import ensure_observer
from ..sched.list_scheduler import list_schedule
from ..sched.units import contract_dfg
from ..core.evalcache import EvalCache, eval_scope, evalcache_enabled
from ..core.parallel import parallel_map, resolve_jobs


class ExplorationResult:
    """Outcome of exploring one basic block (any engine)."""

    def __init__(self, dfg, candidates, base_cycles, final_cycles,
                 rounds, iterations, traces=(), engine=""):
        self.dfg = dfg
        self.candidates = list(candidates)
        self.base_cycles = base_cycles
        self.final_cycles = final_cycles
        self.rounds = rounds
        self.iterations = iterations
        #: Per-round convergence traces: list of per-iteration TETs.
        self.traces = [list(t) for t in traces]
        #: Registry name of the engine that produced this result
        #: (``""`` for results built by older comparator code).
        self.engine = engine

    @property
    def cycle_saving(self):
        """Block cycles saved versus the no-ISE baseline."""
        return self.base_cycles - self.final_cycles

    @property
    def total_area(self):
        """Summed silicon area of all candidates."""
        return sum(c.area for c in self.candidates)

    def __repr__(self):
        return ("ExplorationResult({} ISEs, {} -> {} cycles, "
                "{} rounds / {} iterations)".format(
                    len(self.candidates), self.base_cycles,
                    self.final_cycles, self.rounds, self.iterations))


class EvalBudget:
    """A meter over *uncached* candidate evaluations.

    ``charge()`` is called by :meth:`ExplorerEngine._evaluate`
    immediately before it computes a cycle count the evalcache could
    not answer; once ``limit`` charges have been granted every further
    charge raises :class:`~repro.errors.BudgetExhausted`.  Cache hits
    are free — the budget measures real scheduling work, which is what
    makes cross-engine races fair (a cache-friendly search style is a
    legitimate advantage, re-deriving known cycle counts is not).

    A budget is deliberately process-local: engines running under one
    fan out serially (``jobs`` is forced to 1) so the meter sees every
    charge.
    """

    __slots__ = ("limit", "spent", "denied")

    def __init__(self, limit):
        limit = int(limit)
        if limit < 1:
            raise ConfigError(
                "EvalBudget needs a positive limit, got {}".format(limit))
        self.limit = limit
        self.spent = 0
        #: True once a charge was actually refused (the engine was
        #: stopped by the budget rather than finishing under it).
        self.denied = False

    def charge(self):
        """Grant one uncached evaluation or raise BudgetExhausted."""
        if self.spent >= self.limit:
            self.denied = True
            raise BudgetExhausted(
                "evaluation budget of {} exhausted".format(self.limit))
        self.spent += 1

    @property
    def remaining(self):
        """Charges left before the budget refuses."""
        return self.limit - self.spent

    @property
    def exhausted(self):
        """True when no further uncached evaluation will be granted."""
        return self.spent >= self.limit

    def __repr__(self):
        return "EvalBudget({}/{} spent{})".format(
            self.spent, self.limit, ", denied" if self.denied else "")


@dataclass(frozen=True)
class EngineStats:
    """Uniform counters snapshot of one engine instance.

    ``evaluations`` counts the uncached ``_evaluate`` computations the
    engine actually performed — with the evalcache enabled it equals
    ``cache_misses``; with the cache disabled it is the only record.
    ``budget_spent``/``budget_limit`` are ``None`` for unmetered runs.
    """

    engine: str
    evaluations: int
    cache_hits: int
    cache_misses: int
    cache_entries: int
    budget_spent: int = None
    budget_limit: int = None

    @property
    def cache_lookups(self):
        """Total evalcache probes (hits + misses)."""
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self):
        """Fraction of evalcache probes answered from the cache."""
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0


def _explore_dfg_task(engine, dfg):
    """Module-level worker: explore one block DFG (picklable)."""
    return engine.explore(dfg, jobs=1)


class ExplorerEngine:
    """Abstract base of every pluggable search engine.

    The constructor signature is part of the protocol — the registry's
    :func:`create` instantiates any engine as ``cls(machine,
    **kwargs)`` with the keyword set below, so third-party engines must
    accept (and may ignore) all of them:

    ``machine``
        The :class:`~repro.sched.machine.MachineConfig` to explore for.
    ``params`` / ``constraints`` / ``database`` / ``technology``
        Exploration tunables, §4.2 ISE constraints (clamped to the
        machine's physical register-file ports here), the hardware
        implementation-option database and the delay→cycles conversion.
    ``seed``
        Determinism contract: the same seed must reproduce the same
        result, serially or pooled.
    ``priority`` / ``jobs`` / ``obs``
        List-scheduler priority heuristic, default worker count, and
        the observability context.
    ``batch``
        Lockstep ant batching — meaningful to the ACO engine only;
        other engines store and ignore it.
    ``budget``
        An optional :class:`EvalBudget` metering uncached evaluations.

    Subclasses implement :meth:`explore`; :meth:`explore_many`,
    :meth:`_evaluate`, :meth:`_default_tables` and :meth:`stats` are
    provided.  ``name``/``description`` class attributes identify the
    engine in the registry and the tournament tables.
    """

    #: Registry name (class attribute; set by subclasses).
    name = None
    #: One-line human-readable description for ``repro engines``.
    description = ""

    def __init__(self, machine, params=None, constraints=None,
                 database=None, technology=None, seed=0,
                 priority="children", jobs=None, obs=None, batch=None,
                 budget=None):
        self.machine = machine
        self.params = params or DEFAULT_PARAMS
        constraints = constraints or DEFAULT_CONSTRAINTS
        # The I/O-port constraints of §4.2 can never exceed the physical
        # register-file ports of the machine.
        rf = machine.register_file
        self.constraints = constraints.with_(
            n_in=min(constraints.n_in, rf.read_ports),
            n_out=min(constraints.n_out, rf.write_ports))
        self.database = database or DEFAULT_DATABASE
        self.technology = technology or machine.technology or DEFAULT_TECHNOLOGY
        self.seed = seed
        self.priority = priority
        self.jobs = jobs
        #: Observability context; the falsy NULL_OBSERVER by default so
        #: hook sites cost one boolean check.  Pickles by configuration
        #: — worker-side calls land in the capture buffer and are
        #: replayed by the parent (see :mod:`repro.core.parallel`).
        self.obs = ensure_observer(obs)
        #: Lockstep ant batch request; only the ACO engine interprets
        #: it (and overrides this attribute with the resolved integer).
        self.batch = batch
        #: Optional uncached-evaluation meter (tournament races).
        self.budget = budget
        #: Uncached ``_evaluate`` computations this instance performed.
        self.stat_evaluations = 0
        #: Memo of deterministic candidate evaluations, shared across
        #: rounds, restarts and blocks (``REPRO_EVALCACHE=0`` disables).
        #: Pool workers receive it inside the pickled engine as a
        #: warm read-only snapshot and additionally probe the pool's
        #: cross-worker shared tier, whose keys are scoped by the
        #: machine/technology identity below — ``_evaluate`` depends on
        #: both, and the shared tier outlives this engine (see
        #: :mod:`repro.core.evalcache`).
        scope = eval_scope(self.machine, self.technology)
        self._evalcache = EvalCache(scope) if evalcache_enabled() else None

    # -- the protocol ------------------------------------------------------

    def explore(self, dfg, io_tables=None, jobs=None):
        """Explore one basic-block DFG; return an ExplorationResult.

        Implementations must be deterministic in ``self.seed`` and
        score every trial candidate set through :meth:`_evaluate`.
        Under an :class:`EvalBudget` they return their best-so-far
        result when the meter runs dry, and only propagate
        :class:`~repro.errors.BudgetExhausted` when it dies before the
        block baseline was evaluated.
        """
        raise NotImplementedError

    def explore_many(self, dfgs, jobs=None, costs=None):
        """Explore several DFGs; returns one best result per DFG.

        Default implementation: serial loop when ``jobs`` resolves to 1
        (a budgeted engine always resolves to 1 — the meter is
        process-local), otherwise whole blocks fan out over the worker
        pool with the engine pickled into each task — engine choice
        rides into pool workers exactly like the ACO engine's resolved
        ``batch`` does.  ``costs`` front-loads expensive blocks; it is
        a scheduling hint only.
        """
        dfgs = list(dfgs)
        jobs = resolve_jobs(self.jobs if jobs is None else jobs,
                            obs=self.obs)
        if self.budget is not None:
            jobs = 1
        if jobs <= 1 or len(dfgs) <= 1:
            return [self.explore(dfg, jobs=1) for dfg in dfgs]
        task_costs = list(costs) if costs is not None else None
        return parallel_map(_explore_dfg_task,
                            [(self, dfg) for dfg in dfgs], jobs,
                            obs=self.obs, costs=task_costs)

    def stats(self):
        """An :class:`EngineStats` snapshot of this instance."""
        hits = misses = entries = 0
        if self._evalcache is not None:
            hits, misses, entries = self._evalcache.stats()
        budget = self.budget
        return EngineStats(
            engine=self.name or type(self).__name__,
            evaluations=self.stat_evaluations,
            cache_hits=hits, cache_misses=misses, cache_entries=entries,
            budget_spent=budget.spent if budget is not None else None,
            budget_limit=budget.limit if budget is not None else None)

    # -- shared machinery --------------------------------------------------

    def _default_tables(self, dfg):
        """uid → IOTable from the hardware database (the §4.2 default)."""
        return {
            uid: default_io_table(dfg.op(uid), self.database)
            for uid in dfg.nodes
        }

    def _evaluate(self, dfg, candidates, io_tables=None):
        """Block cycles after fixing ``candidates`` (list scheduling).

        Deterministic (contraction + list scheduling), so results are
        memoised in the cross-restart :class:`EvalCache` keyed on the
        DFG digest, the *ordered* candidate fingerprints (contraction
        names supernodes by position, and the list scheduler's unit-name
        tie-break can see that) and the software latencies used.  Cache
        hits are free; an uncached computation charges the
        :class:`EvalBudget` (when one is attached) *before* any work
        happens, so a stopped engine performed exactly ``budget.spent``
        real evaluations.
        """
        software_cycles = None
        if io_tables is not None:
            software_cycles = {uid: io_tables[uid].software[0].cycles
                               for uid in dfg.nodes if uid in io_tables}
        cache = self._evalcache
        key = None
        if cache is not None:
            latencies = (None if software_cycles is None
                         else tuple(sorted(software_cycles.items())))
            key = cache.key(dfg, candidates, latencies)
            cached = cache.get(key)
            if cached is not None:
                return cached
        if self.budget is not None:
            self.budget.charge()
        self.stat_evaluations += 1
        groups = [(c.members, c.option_of) for c in candidates]
        graph, units = contract_dfg(dfg, groups, self.technology,
                                    software_cycles=software_cycles)
        schedule = list_schedule(graph, units, self.machine)
        makespan = schedule.makespan
        if cache is not None:
            cache.put(key, makespan)
        return makespan

    def _min_delay_options(self, dfg, members):
        """Fastest hardware option per member (the greedy/KL realiser)."""
        option_of = {}
        for uid in members:
            options = self.database.hardware_options(dfg.op(uid).name)
            option_of[uid] = min(options, key=lambda o: o.delay_ns)
        return option_of

    @staticmethod
    def _better(a, b):
        """Restart preference: fewest final cycles, then least area."""
        return (a.final_cycles, a.total_area) < (b.final_cycles, b.total_area)


# -- the registry ------------------------------------------------------------

class _EngineEntry:
    """One registry slot: a loader thunk plus its listing description."""

    __slots__ = ("loader", "description")

    def __init__(self, loader, description):
        self.loader = loader
        self.description = description


_REGISTRY = {}


def _unknown(name):
    return ReproError(
        "unknown engine {!r}; choose from {}".format(
            name, ", ".join(sorted(_REGISTRY)) or "<none registered>"))


def register(name, engine, description=None, replace=False):
    """Register an engine class under ``name``.

    ``engine`` is an :class:`ExplorerEngine` subclass (third-party
    engines use this directly: ``engines.register("mine", MyEngine)``).
    ``description`` defaults to the class's ``description`` attribute.
    Re-registering an existing name requires ``replace=True``.
    """
    if not name or not isinstance(name, str):
        raise ReproError("engine name must be a non-empty string")
    if name in _REGISTRY and not replace:
        raise ReproError(
            "engine {!r} is already registered (pass replace=True "
            "to override)".format(name))
    text = description if description is not None \
        else (getattr(engine, "description", "") or engine.__name__)
    _REGISTRY[name] = _EngineEntry(lambda: engine, text)


def register_lazy(name, module, attr, description, replace=False):
    """Register a built-in engine without importing its module yet."""
    if name in _REGISTRY and not replace:
        raise ReproError(
            "engine {!r} is already registered (pass replace=True "
            "to override)".format(name))

    def loader():
        return getattr(importlib.import_module(module), attr)

    _REGISTRY[name] = _EngineEntry(loader, description)


def unregister(name):
    """Remove ``name`` from the registry (testing hook)."""
    if name not in _REGISTRY:
        raise _unknown(name)
    del _REGISTRY[name]


def available():
    """Sorted tuple of every registered engine name."""
    return tuple(sorted(_REGISTRY))


def describe(name):
    """The one-line description ``name`` was registered with."""
    try:
        return _REGISTRY[name].description
    except KeyError:
        raise _unknown(name) from None


def engine_class(name):
    """Resolve ``name`` to its engine class (imports lazily)."""
    try:
        entry = _REGISTRY[name]
    except KeyError:
        raise _unknown(name) from None
    return entry.loader()


def create(name, machine, **kwargs):
    """Instantiate the engine registered under ``name``.

    ``kwargs`` are the :class:`ExplorerEngine` constructor keywords
    (params, constraints, technology, seed, obs, budget, ...).
    Unknown names raise :class:`~repro.errors.ReproError` listing the
    valid set.
    """
    return engine_class(name)(machine, **kwargs)
