"""The paper's multi-issue ACO exploration as a pluggable engine.

:class:`AcoEngine` runs the full round/iteration structure of
Fig. 4.3.1 on one basic-block DFG:

* a **round** explores one ISE: iterations construct complete schedules
  (ACO ants drawing (operation, option) pairs from the Ready-Matrix),
  trails and merits are updated after each, until every operation's
  selected probability passes ``P_END`` (or the iteration budget runs
  out, in which case the best iteration seen is used);
* the taken-hardware nodes are made convex and legalised into
  candidates; the best one is fixed into the DFG as a supernode and the
  next round explores the remainder;
* rounds stop when no candidate improves the deterministic list
  schedule of the block.

§5.1 repeats exploration ``restarts`` times per block and keeps the
best outcome; :meth:`AcoEngine.explore` does the same.  Restarts (and,
through :meth:`AcoEngine.explore_many`, whole blocks) are independent:
each derives its RNG from ``(seed, restart, function, block)`` alone,
so they can fan out over a process pool (``jobs`` / ``REPRO_JOBS``)
with results bit-identical to the serial path.

This class *is* the historical ``MultiIssueExplorer`` — the algorithm
moved here unchanged when the :class:`~repro.engines.base.ExplorerEngine`
protocol was extracted, and ``repro.core.exploration.MultiIssueExplorer``
remains as a deprecated alias.  With no :class:`EvalBudget` attached
the engine behaves bit-identically to every earlier release (the golden
digests of ``BENCH_sched``/``BENCH_batch``/``BENCH_pool`` pin this); a
budget only ever *stops* work early, never reorders it.
"""

import random
from bisect import bisect_left, insort

import numpy as np

from ..errors import BudgetExhausted, ExplorationError
from ..obs import ensure_observer  # noqa: F401  (re-export stability)
from ..core.batch import BatchedAntRunner, effective_batch, resolve_batch
from ..core.candidate import ISECandidate
from ..core.contract import contract_candidate
from ..core.iteration import IterationSchedule
from ..core.make_convex import legalize_components
from ..core.merit import update_merits
from ..core.parallel import parallel_map, resolve_jobs
from ..core.state import ExplorationState
from ..core.trail import update_trails
from .base import ExplorationResult, ExplorerEngine


def _restart_task(explorer, dfg, io_tables, restart):
    """Module-level worker: one independent restart (picklable)."""
    return explorer._explore_restart(dfg, io_tables, restart)


class AcoEngine(ExplorerEngine):
    """The paper's ISE exploration algorithm ("MI") as an engine."""

    name = "aco"
    description = ("multi-issue ant-colony search of the source paper "
                   "(critical-path-aware trails/merits, the default)")

    def __init__(self, machine, params=None, constraints=None,
                 database=None, technology=None, seed=0,
                 priority="children", jobs=None, obs=None, batch=None,
                 budget=None):
        super().__init__(machine, params=params, constraints=constraints,
                         database=database, technology=technology,
                         seed=seed, priority=priority, jobs=jobs, obs=obs,
                         budget=budget)
        #: Ants advanced in lockstep per iteration batch (``None`` →
        #: ``$REPRO_ANT_BATCH`` or 16).  ``1`` selects the scalar round
        #: loop — the bit-exact parity escape hatch; larger sizes draw
        #: in (step, ant) order and fold one trail/merit update over
        #: each batch, so their RNG stream (and golden digest) differs
        #: from the scalar path's.  Resolved once here so pool workers
        #: unpickle a fixed integer.
        self.batch = resolve_batch(batch, obs=self.obs)

    # -- public API -------------------------------------------------------

    def explore(self, dfg, io_tables=None, jobs=None):
        """Explore one basic-block DFG; returns the best of ``restarts``
        independent runs (fewest final cycles, then least area).

        ``io_tables`` (uid → :class:`~repro.hwlib.options.IOTable`)
        overrides the default database-driven tables — the hook through
        which the §6 extensions (e.g. HW/SW partitioning) reuse the
        engine with their own implementation options.  ``jobs`` > 1
        fans the restarts over a process pool; each restart seeds its
        own RNG, so the outcome is identical to the serial run.  An
        attached :class:`~repro.engines.base.EvalBudget` forces the
        serial path (the meter is process-local) and stops the restart
        loop once spent, keeping the best completed restart.
        """
        if io_tables is None:
            io_tables = self._default_tables(dfg)
        jobs = resolve_jobs(self.jobs if jobs is None else jobs,
                            obs=self.obs)
        restarts = range(self.params.restarts)
        if self.budget is not None:
            results = []
            for restart in restarts:
                try:
                    results.append(
                        self._explore_restart(dfg, io_tables, restart))
                except BudgetExhausted:
                    # Dried up before this restart's baseline; earlier
                    # restarts (if any) stand.
                    break
            if not results:
                raise BudgetExhausted(
                    "evaluation budget exhausted before block {}:{} "
                    "could be explored".format(dfg.function, dfg.label))
        elif jobs > 1:
            results = parallel_map(
                _restart_task,
                [(self, dfg, io_tables, restart) for restart in restarts],
                jobs, obs=self.obs)
        else:
            results = (self._explore_restart(dfg, io_tables, restart)
                       for restart in restarts)
        return self._best_of(results)

    def explore_many(self, dfgs, jobs=None, costs=None):
        """Explore several DFGs; returns one best result per DFG.

        Fans every (block, restart) combination over the pool, which
        balances better than whole blocks when block sizes differ.  The
        per-restart reduction is the same as :meth:`explore`'s, so the
        returned list matches serial block-by-block exploration exactly.

        ``costs`` — optional per-DFG cost estimates (the design flow
        passes the profile phase's schedule lengths) — lets the pool
        dispatch the longest blocks first so short ones backfill behind
        them.  Scheduling hint only; results are unaffected.
        """
        dfgs = list(dfgs)
        jobs = resolve_jobs(self.jobs if jobs is None else jobs,
                            obs=self.obs)
        if self.budget is not None:
            jobs = 1
        if jobs <= 1:
            return [self.explore(dfg, jobs=1) for dfg in dfgs]
        tables = [self._default_tables(dfg) for dfg in dfgs]
        tasks = [(self, dfg, tables[index], restart)
                 for index, dfg in enumerate(dfgs)
                 for restart in range(self.params.restarts)]
        task_costs = None
        if costs is not None and len(costs) == len(dfgs):
            task_costs = [cost for cost in costs
                          for __ in range(self.params.restarts)]
        flat = parallel_map(_restart_task, tasks, jobs, obs=self.obs,
                            costs=task_costs)
        count = self.params.restarts
        return [self._best_of(flat[index * count:(index + 1) * count])
                for index in range(len(dfgs))]

    def _explore_restart(self, dfg, io_tables, restart):
        """One independent restart with its derived RNG stream."""
        rng = random.Random("{}:{}:{}:{}".format(
            self.seed, restart, dfg.function, dfg.label))
        obs = self.obs
        if obs:
            cache = self._evalcache
            before = cache.stats() if cache is not None else None
            before_shared = cache.shared_hits if cache is not None else 0
            with obs.timer("explore.restart"):
                result = self._explore_once(dfg, rng, io_tables,
                                            restart=restart)
            if cache is not None:
                hits, misses, entries = cache.stats()
                obs.count("evalcache.hits", hits - before[0])
                obs.count("evalcache.misses", misses - before[1])
                obs.count("evalcache.shared_hits",
                          cache.shared_hits - before_shared)
                obs.gauge("evalcache.entries", entries)
            return result
        return self._explore_once(dfg, rng, io_tables, restart=restart)

    def _best_of(self, results):
        """Reduce restart results in order (first strictly better wins)."""
        best = None
        for result in results:
            if best is None or self._better(result, best):
                best = result
        obs = self.obs
        if obs and best is not None:
            dfg = best.dfg
            obs.event("block", function=dfg.function, label=dfg.label,
                      base_cycles=best.base_cycles,
                      final_cycles=best.final_cycles,
                      rounds=best.rounds, iterations=best.iterations,
                      candidates=len(best.candidates))
            obs.count("explore.blocks")
        return best

    # -- one full exploration (all rounds) ------------------------------------

    def _explore_once(self, original_dfg, rng, io_tables, restart=0):
        base_cycles = self._evaluate(original_dfg, [], io_tables)
        current_dfg, current_tables = original_dfg, io_tables
        candidates = []
        best_cycles = base_cycles
        rounds = iterations = 0
        dry_rounds = 0
        traces = []
        # Round/iteration events carry the block + restart identity so
        # a merged parallel trace remains attributable.
        tag = (original_dfg.function, original_dfg.label, restart)
        try:
            while rounds < self.params.max_rounds and dry_rounds < 2:
                round_result = self._run_round(current_dfg, current_tables,
                                               rng, tag=tag,
                                               round_index=rounds)
                rounds += 1
                iterations += round_result.iterations
                traces.append(round_result.trace)
                candidate_members = round_result.candidates
                if not candidate_members:
                    dry_rounds += 1
                    continue
                # Keep the single best new candidate of the round (the
                # thesis explores one ISE per round).
                scored = []
                limit = self.constraints.max_ise_cycles
                for members, option_of in candidate_members:
                    candidate = ISECandidate(
                        original_dfg, members, option_of, self.technology)
                    if limit is not None and candidate.cycles > limit:
                        continue          # pipestage timing constraint
                    trial = candidates + [candidate]
                    cycles = self._evaluate(original_dfg, trial, io_tables)
                    scored.append((cycles, candidate.area, candidate))
                if not scored:
                    dry_rounds += 1
                    continue
                scored.sort(
                    key=lambda item: (item[0], item[1],
                                      sorted(item[2].members)))
                cycles, __, winner = scored[0]
                if cycles >= best_cycles:
                    # No performance gain this round; ACO is stochastic,
                    # so retry once before concluding no ISE remains.
                    dry_rounds += 1
                    continue
                dry_rounds = 0
                winner.cycle_saving = best_cycles - cycles
                candidates.append(winner)
                best_cycles = cycles
                current_dfg, current_tables = contract_candidate(
                    current_dfg, winner, current_tables)
        except BudgetExhausted:
            # Metered race stop: the partially-scored round is dropped,
            # everything fixed so far stands.
            pass
        return ExplorationResult(original_dfg, candidates, base_cycles,
                                 best_cycles, rounds, iterations,
                                 traces=traces, engine=self.name)

    # -- one round (Fig. 4.3.1) --------------------------------------------------

    def _run_round(self, dfg, io_tables, rng, tag=("", "", 0),
                   round_index=0):
        """One round: scalar loop, or lockstep batches when
        ``self.batch`` > 1 (see :meth:`_run_round_batched`)."""
        obs = self.obs
        function, label, restart = tag
        state = ExplorationState(dfg, io_tables, self.params,
                                 priority=self.priority)
        if not any(state.hardware_options(uid) for uid in dfg.nodes):
            if obs:
                obs.event("round", function=function, label=label,
                          restart=restart, round=round_index,
                          iterations=0, converged=False, proposals=0,
                          tet_best=None)
            return _RoundResult([], 0)
        batch = effective_batch(self.batch, len(dfg.nodes))
        if batch > 1:
            return self._run_round_batched(dfg, state, rng, batch,
                                           tag=tag, round_index=round_index)
        return self._run_round_scalar(dfg, state, rng, tag=tag,
                                      round_index=round_index)

    def _run_round_scalar(self, dfg, state, rng, tag=("", "", 0),
                          round_index=0):
        """The reference one-ant-at-a-time loop (``batch=1``)."""
        obs = self.obs
        function, label, restart = tag
        tet_old = None
        prev_order = {}
        best_schedule = None
        best_key = None
        iterations = 0
        trace = []
        for _ in range(self.params.max_iterations):
            schedule = self._run_iteration(dfg, state, rng)
            iterations += 1
            trace.append(schedule.makespan)
            tet_old = update_trails(state, schedule, prev_order, tet_old)
            prev_order = dict(schedule.order)
            update_merits(dfg, state, schedule, self.constraints)
            key = _schedule_key(schedule)
            if best_key is None or key < best_key:
                best_key = key
                best_schedule = schedule
            converged = state.converged()
            if obs:
                obs.event("iteration", function=function, label=label,
                          restart=restart, round=round_index,
                          iteration=iterations - 1,
                          tet=schedule.makespan,
                          min_sp=state.convergence_floor(),
                          clusters=len(schedule.clusters))
                obs.count("iter.cluster_opens", schedule.stat_cluster_opens)
                obs.count("iter.cluster_joins", schedule.stat_cluster_joins)
                obs.count("iter.join_rejects", schedule.stat_join_rejects)
                obs.count("sched.first_fit_scans",
                          schedule.table.stat_first_fit_scans)
                obs.count("sched.scan_cycles",
                          schedule.table.stat_scan_cycles)
            if converged:
                break
        proposals = self._collect_proposals(dfg, state, best_schedule)
        self._emit_round_obs(state, tag, round_index, iterations,
                             proposals, trace)
        return _RoundResult(proposals, iterations, trace)

    def _run_round_batched(self, dfg, state, rng, batch,
                           tag=("", "", 0), round_index=0):
        """Lockstep-batched round: ``batch`` ants per trail update.

        Every batch draws against the same frozen trail/merit state
        (exactly what the scalar loop sees *within* one iteration) via
        the vectorised :class:`~repro.core.batch.BatchedAntRunner`;
        afterwards one Fig. 4.3.5 trail update and one merit sweep are
        folded over the batch, driven by the batch's best schedule
        (iteration-best update — the batched counterpart of the scalar
        per-ant update, with a ``batch``-fold cheaper maintenance
        cost).  Each ant still counts as one iteration in traces,
        budgets and observability events.
        """
        obs = self.obs
        function, label, restart = tag
        runner = BatchedAntRunner(dfg, state, self.machine,
                                  self.technology, self.constraints)
        tet_old = None
        prev_order = {}
        best_schedule = None
        best_key = None
        iterations = 0
        trace = []
        budget = self.params.max_iterations
        converged = False
        while iterations < budget and not converged:
            schedules = runner.run(rng, min(batch, budget - iterations))
            batch_best = None
            batch_key = None
            for schedule in schedules:
                iterations += 1
                trace.append(schedule.makespan)
                key = _schedule_key(schedule)
                if batch_key is None or key < batch_key:
                    batch_key = key
                    batch_best = schedule
                if best_key is None or key < best_key:
                    best_key = key
                    best_schedule = schedule
            tet_old = update_trails(state, batch_best, prev_order, tet_old)
            prev_order = dict(batch_best.order)
            update_merits(dfg, state, batch_best, self.constraints)
            converged = state.converged()
            if obs:
                floor = state.convergence_floor()
                base = iterations - len(schedules)
                for index, schedule in enumerate(schedules):
                    obs.event("iteration", function=function, label=label,
                              restart=restart, round=round_index,
                              iteration=base + index,
                              tet=schedule.makespan,
                              min_sp=floor,
                              clusters=len(schedule.clusters))
                    obs.count("iter.cluster_opens",
                              schedule.stat_cluster_opens)
                    obs.count("iter.cluster_joins",
                              schedule.stat_cluster_joins)
                    obs.count("iter.join_rejects",
                              schedule.stat_join_rejects)
                    obs.count("sched.first_fit_scans",
                              schedule.table.stat_first_fit_scans)
                    obs.count("sched.scan_cycles",
                              schedule.table.stat_scan_cycles)
        proposals = self._collect_proposals(dfg, state, best_schedule)
        if obs:
            obs.count("batch.ants_batched", runner.stat_ants_batched)
            obs.count("batch.scalar_fallbacks",
                      runner.stat_scalar_fallbacks)
            obs.count("batch.rows_vectorized",
                      runner.stat_rows_vectorized)
        self._emit_round_obs(state, tag, round_index, iterations,
                             proposals, trace)
        return _RoundResult(proposals, iterations, trace)

    def _collect_proposals(self, dfg, state, best_schedule):
        """Candidates from the converged choice AND from the best
        iteration seen: the colony's converged state occasionally
        drifts off the best schedule it constructed, so both sources
        are proposed and the caller keeps whichever evaluates better.
        """
        proposals = []
        seen = set()
        for chosen_hw, option_of in self._candidate_sources(
                dfg, state, best_schedule):
            for members in legalize_components(dfg, chosen_hw,
                                               self.constraints):
                if members in seen:
                    continue
                seen.add(members)
                proposals.append(
                    (members, {uid: option_of[uid] for uid in members}))
        return proposals

    def _emit_round_obs(self, state, tag, round_index, iterations,
                        proposals, trace):
        obs = self.obs
        if not obs:
            return
        function, label, restart = tag
        obs.event("round", function=function, label=label,
                  restart=restart, round=round_index,
                  iterations=iterations, converged=state.converged(),
                  proposals=len(proposals),
                  tet_best=min(trace) if trace else None)
        obs.count("explore.rounds")
        obs.count("explore.iterations", iterations)
        obs.count("state.weight_row_rebuilds",
                  state.stats["weight_rebuilds"])
        obs.count("state.convergence_refreshes",
                  state.stats["conv_refreshes"])
        memo = state.round_memo
        obs.count("grouping.memo_hits", getattr(memo, "hits", 0))
        obs.count("grouping.memo_misses", getattr(memo, "misses", 0))

    def _candidate_sources(self, dfg, state, best_schedule):
        sources = [(self._final_hardware_set(dfg, state, best_schedule),
                    self._final_options(dfg, state, best_schedule))]
        if best_schedule is not None:
            option_of = {}
            for uid in dfg.nodes:
                chosen = best_schedule.chosen.get(uid)
                if chosen is not None and chosen.is_hardware:
                    option_of[uid] = chosen
            if option_of:
                sources.append((set(option_of), option_of))
        return sources

    def _final_hardware_set(self, dfg, state, best_schedule):
        """Taken-hardware nodes: converged sp winners, falling back to
        the best iteration's realized choices."""
        if state.converged():
            chosen = set()
            for uid in dfg.nodes:
                option, __ = state.taken_option(uid)
                if option.is_hardware:
                    chosen.add(uid)
            return chosen
        if best_schedule is None:
            return set()
        return set(best_schedule.hardware_chosen_set())

    def _final_options(self, dfg, state, best_schedule):
        """Hardware option per node for candidate construction."""
        options = {}
        for uid in dfg.nodes:
            hw = state.hardware_options(uid)
            if not hw:
                continue
            if state.converged():
                option, __ = state.taken_option(uid)
                if not option.is_hardware:
                    option = max(hw, key=lambda o: state.sp_of(uid)[o.label])
            else:
                chosen = (best_schedule.chosen.get(uid)
                          if best_schedule is not None else None)
                option = chosen if (chosen is not None
                                    and chosen.is_hardware) else hw[0]
            options[uid] = option
        return options

    # -- one iteration: Ready-Matrix driven construction ----------------------------

    def _run_iteration(self, dfg, state, rng):
        schedule = IterationSchedule(
            dfg, self.machine, self.technology, self.constraints)
        remaining_preds = {uid: len(dfg.predecessors(uid))
                           for uid in dfg.nodes}
        # The Ready-Matrix draw wants the ready set in uid order every
        # step; keep it as a sorted list (bisect insertion) instead of
        # re-sorting a set per draw.
        ready = sorted(uid for uid, count in remaining_preds.items()
                       if count == 0)
        remaining = len(remaining_preds)
        while remaining:
            if not ready:
                raise ExplorationError("ready set empty with work remaining")
            entries = state.cp_weights(ready)
            (uid, option) = _roulette(entries, rng)
            if option.is_hardware:
                schedule.schedule_hardware(uid, option)
            else:
                schedule.schedule_software(uid, option)
            del ready[bisect_left(ready, uid)]
            remaining -= 1
            for succ in dfg.successors(uid):
                remaining_preds[succ] -= 1
                if remaining_preds[succ] == 0:
                    insort(ready, succ)
        return schedule.verify()


class _RoundResult:
    __slots__ = ("candidates", "iterations", "trace")

    def __init__(self, candidates, iterations, trace=()):
        self.candidates = candidates
        self.iterations = iterations
        self.trace = list(trace)


def _schedule_key(schedule):
    """Preference key over iteration schedules: lower makespan first,
    total ISE area of the clustered options as the tie-break."""
    return (schedule.makespan,
            sum(opt.area
                for c in schedule.clusters
                for opt in c.option_of.values()))


def _roulette(entries, rng):
    """Draw one entry proportionally to its weight.

    The accumulate-and-compare loop is a ``np.cumsum`` plus a
    ``searchsorted`` for the first cumulative weight reaching the
    scaled draw — the additions happen in the same order as the old
    Python loop, so the chosen entry is bit-identical.

    Degenerate case: when the weights sum to zero (all-zero rows, or a
    sum that underflowed), every entry is equally (un)weighted, so the
    draw falls back to a *uniform* pick instead of collapsing onto the
    first entry.  Exactly one ``rng.random()`` is consumed on every
    path, so the fallback never shifts the RNG stream of later draws.
    """
    cum = np.cumsum(np.fromiter((weight for __, weight in entries),
                                dtype=np.float64, count=len(entries)))
    total = cum[-1]
    draw = rng.random()
    if total <= 0.0:
        return entries[min(int(draw * len(entries)), len(entries) - 1)][0]
    index = int(np.searchsorted(cum, draw * total))
    if index >= len(entries):
        index = len(entries) - 1          # floating-point overshoot
    return entries[index][0]
