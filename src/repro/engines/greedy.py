"""Greedy cone growth as a pluggable engine.

The classic Clark-style baseline promoted from
:mod:`repro.baselines.greedy` behind the
:class:`~repro.engines.base.ExplorerEngine` protocol: grow a candidate
cone from every groupable seed by absorbing the legal neighbour that
maximises collapsed-chain gain, keep the cone whose fixing improves the
block's metered list schedule the most, repeat round-wise until nothing
helps.  Fully deterministic — ``seed`` and ``restarts`` change nothing
— which makes it the cheapest yard-stick in engine tournaments: any
stochastic engine burning a real evaluation budget should beat it.

(The original :class:`~repro.baselines.greedy.GreedyExplorer` remains
for the §5 comparator tables; this engine differs in that it scores
through the shared metered/cached evaluator and honours
``max_ise_cycles``.)
"""

from ..errors import BudgetExhausted
from ..baselines.greedy import _chain, _fringe
from ..graph.analysis import is_legal
from ..graph.bitset import bitset_view
from ..core.candidate import ISECandidate
from .base import ExplorationResult, ExplorerEngine


class GreedyEngine(ExplorerEngine):
    """Deterministic greedy cone growth (single-pass baseline)."""

    name = "greedy"
    description = ("deterministic greedy cone growth around each seed "
                   "node (the classic single-pass baseline)")

    #: Cone size ceiling (matches the §5 baseline).
    max_size = 8

    def explore(self, dfg, io_tables=None, jobs=None):
        """Round-wise greedy cone growth; returns an ExplorationResult.

        ``jobs`` is accepted for protocol parity but ignored — the
        search is a single deterministic pass, there is nothing to fan
        out inside one block.
        """
        if io_tables is None:
            io_tables = self._default_tables(dfg)
        base = self._evaluate(dfg, [], io_tables)
        candidates = []
        best_cycles = base
        rounds = 0
        try:
            while rounds < self.params.max_rounds:
                rounds += 1
                taken = set().union(*(c.members for c in candidates)) \
                    if candidates else set()
                proposal = self._best_candidate(dfg, taken)
                if proposal is None:
                    break
                cycles = self._evaluate(dfg, candidates + [proposal],
                                        io_tables)
                if cycles >= best_cycles:
                    break
                proposal.cycle_saving = best_cycles - cycles
                candidates.append(proposal)
                best_cycles = cycles
        except BudgetExhausted:
            # Budget died mid-round; everything fixed so far stands.
            pass
        return ExplorationResult(dfg, candidates, base, best_cycles,
                                 rounds, rounds, engine=self.name)

    # -- internals ---------------------------------------------------------

    def _best_candidate(self, dfg, taken):
        """Best cone over all untaken seeds by the static score."""
        limit = self.constraints.max_ise_cycles
        best = None
        best_score = 0.0
        for seed in dfg.groupable_nodes():
            if seed in taken:
                continue
            members = self._grow(dfg, seed, taken)
            if len(members) < 2:
                continue
            candidate = ISECandidate(
                dfg, members, self._min_delay_options(dfg, members),
                self.technology, source="GREEDY")
            if limit is not None and candidate.cycles > limit:
                continue          # pipestage timing constraint
            score = self._score(dfg, members, candidate)
            if score > best_score:
                best, best_score = candidate, score
        return best

    def _grow(self, dfg, seed, taken):
        """Absorb legal fringe neighbours by collapsed-chain gain.

        The per-step legality filter over the grow frontier runs as one
        batched bitset call when the kernel is enabled; candidates are
        kept in fringe iteration order either way, so the strict ``>``
        tie-break picks the same absorption as the scalar path.
        """
        members = {seed}
        view = bitset_view(dfg)
        while len(members) < self.max_size:
            nodes = [node for node in _fringe(dfg, members)
                     if node not in taken and dfg.op(node).groupable]
            if view is not None and len(nodes) > 1:
                trials = [members | {node} for node in nodes]
                legal = view.legal_rows(view.pack_rows(trials),
                                        self.constraints)
                nodes = [node for node, ok in zip(nodes, legal) if ok]
            else:
                nodes = [node for node in nodes
                         if is_legal(dfg, members | {node},
                                     self.constraints)]
            best_next, best_gain = None, 0.0
            for node in nodes:
                trial = members | {node}
                gain = (_chain(dfg, trial) - _chain(dfg, members))
                # Prefer chain-lengthening absorptions; allow width-only
                # growth at low priority.
                gain = gain + 0.1
                if gain > best_gain:
                    best_next, best_gain = node, gain
            if best_next is None:
                break
            members.add(best_next)
        if not is_legal(dfg, members, self.constraints):
            return {seed}
        return members

    def _score(self, dfg, members, candidate):
        """Static ranking: collapsed cycles saved, tiny area tie-break."""
        saving = _chain(dfg, members) - candidate.cycles
        if saving <= 0:
            return 0.0
        return saving + 1.0 / (1.0 + candidate.area)
