"""Pluggable ISE-exploration engines and their string-keyed registry.

The design flow, :func:`repro.api.explore` and the CLI resolve their
``engine=`` / ``--engine`` argument through this package: every engine
implements the :class:`~repro.engines.base.ExplorerEngine` protocol, so
rival search strategies race interchangeably over the same DFG /
IO-table / convexity machinery and — crucially — the same metered
:meth:`~repro.engines.base.ExplorerEngine._evaluate` scoring path,
which is what makes equal-:class:`~repro.engines.base.EvalBudget`
tournaments (:mod:`repro.eval.tournament`) fair.

Built-in engines (lazily imported on first use):

``aco``
    The paper's multi-issue ant-colony search (the default).
``isegen``
    ISEGEN-style Kernighan-Lin cut growing (Biswas et al.).
``greedy``
    Deterministic cone growth promoted from the §5 baselines.
``genetic``
    Generational genetic search over hardware subsets.

Third-party engines join with ``engines.register("name", MyEngine)``.
"""

from .base import (EngineStats, EvalBudget, ExplorationResult,
                   ExplorerEngine, available, create, describe,
                   engine_class, register, register_lazy, unregister)

register_lazy("aco", "repro.engines.aco", "AcoEngine",
              "multi-issue ant-colony search of the source paper "
              "(critical-path-aware trails/merits, the default)")
register_lazy("isegen", "repro.engines.isegen", "IsegenEngine",
              "ISEGEN-style Kernighan-Lin cut growing: toggle-based "
              "iterative improvement with locking and best-prefix "
              "reversion")
register_lazy("greedy", "repro.engines.greedy", "GreedyEngine",
              "deterministic greedy cone growth around each seed node "
              "(the classic single-pass baseline)")
register_lazy("genetic", "repro.engines.genetic", "GeneticEngine",
              "generational genetic search over hardware-node subsets "
              "(tournament selection, uniform crossover)")

__all__ = [
    "EngineStats", "EvalBudget", "ExplorationResult", "ExplorerEngine",
    "available", "create", "describe", "engine_class", "register",
    "register_lazy", "unregister",
]
