"""Generational genetic search over hardware-node subsets.

The generic black-box contender of the engine tournament: a population
of membership sets (over the block's groupable, not-yet-taken nodes)
evolves by tournament selection, uniform crossover and point mutation.
Every individual is repaired through the shared
:func:`~repro.core.make_convex.legalize_components` machinery and its
best legal piece is scored with the metered evaluator — fitness *is*
real schedule improvement, so the GA pays for its population size in
budget charges like every other engine (the evalcache keeps re-scored
genotypes free).

Rounds work like the other engines': the fittest candidate of a run is
fixed, its nodes leave the gene pool, and the GA re-runs on the
remainder until a round stops improving the block.  All randomness
derives from the per-restart RNG stream
(``seed:restart:function:label``), the engine-wide determinism
contract.
"""

import random

from ..errors import BudgetExhausted
from ..baselines.greedy import _fringe
from ..graph.bitset import bitset_view
from ..core.candidate import ISECandidate
from ..core.make_convex import legalize_components
from .base import ExplorationResult, ExplorerEngine

#: Individuals per generation.
POPULATION = 10
#: Membership ceiling (oversized genotypes are trimmed at random).
MAX_GENES = 12


class GeneticEngine(ExplorerEngine):
    """Generational GA over node subsets (tournament + crossover)."""

    name = "genetic"
    description = ("generational genetic search over hardware-node "
                   "subsets (tournament selection, uniform crossover)")

    def explore(self, dfg, io_tables=None, jobs=None):
        """Best of ``restarts`` independent GA runs on one block."""
        if io_tables is None:
            io_tables = self._default_tables(dfg)
        results = []
        for restart in range(self.params.restarts):
            rng = random.Random("{}:{}:{}:{}".format(
                self.seed, restart, dfg.function, dfg.label))
            try:
                results.append(self._explore_once(dfg, rng, io_tables))
            except BudgetExhausted:
                break
        if not results:
            raise BudgetExhausted(
                "evaluation budget exhausted before block {}:{} "
                "could be explored".format(dfg.function, dfg.label))
        best = None
        for result in results:
            if best is None or self._better(result, best):
                best = result
        return best

    # -- one restart: round-wise evolution ---------------------------------

    def _explore_once(self, dfg, rng, io_tables):
        base = self._evaluate(dfg, [], io_tables)
        candidates = []
        best_cycles = base
        rounds = generations = 0
        dry = 0
        try:
            while rounds < self.params.max_rounds and dry < 2:
                rounds += 1
                taken = set().union(*(c.members for c in candidates)) \
                    if candidates else set()
                eligible = sorted(uid for uid in dfg.groupable_nodes()
                                  if uid not in taken)
                if len(eligible) < 2:
                    break
                winner, ran = self._evolve(dfg, eligible, candidates,
                                           best_cycles, rng, io_tables)
                generations += ran
                if winner is None:
                    dry += 1
                    continue
                cycles, candidate = winner
                if cycles >= best_cycles:
                    dry += 1
                    continue
                dry = 0
                candidate.cycle_saving = best_cycles - cycles
                candidates.append(candidate)
                best_cycles = cycles
        except BudgetExhausted:
            pass
        return ExplorationResult(dfg, candidates, base, best_cycles,
                                 rounds, generations, engine=self.name)

    # -- the GA ------------------------------------------------------------

    def _evolve(self, dfg, eligible, fixed, best_cycles, rng, io_tables):
        """One GA run; returns ((cycles, candidate) or None, generations).

        The generation count scales with ``params.max_iterations`` so
        the effort knob every engine shares means the same thing here.
        """
        generations = max(1, min(5, self.params.max_iterations // 3))
        memo = {}
        population = [self._seed_individual(dfg, eligible, rng)
                      for __ in range(POPULATION)]
        whole = self._screen(dfg, population, memo)
        scored = [(self._fitness(dfg, one, fixed, best_cycles, memo,
                                 io_tables, whole=whole.get(one, False)),
                   one)
                  for one in population]
        for __ in range(generations):
            scored.sort(key=_rank)
            elite = [one for __, one in scored[:2]]
            children = list(elite)
            while len(children) < POPULATION:
                mother = self._select(scored, rng)
                father = self._select(scored, rng)
                child = self._crossover(mother, father, eligible, rng)
                child = self._mutate(child, eligible, rng)
                if not child:
                    child = self._seed_individual(dfg, eligible, rng)
                children.append(child)
            whole = self._screen(dfg, children, memo)
            scored = [(self._fitness(dfg, one, fixed, best_cycles, memo,
                                     io_tables, whole=whole.get(one, False)),
                       one)
                      for one in children]
        scored.sort(key=_rank)
        fitness, __ = scored[0]
        if fitness is None:
            return None, generations
        __, cycles, candidate = fitness
        return (cycles, candidate), generations

    def _seed_individual(self, dfg, eligible, rng):
        """A random connected cone: seed plus random fringe absorption."""
        eligible_set = set(eligible)
        members = {rng.choice(eligible)}
        target = rng.randint(2, min(8, len(eligible)))
        while len(members) < target:
            frontier = sorted(_fringe(dfg, members) & eligible_set)
            if not frontier:
                break
            members.add(rng.choice(frontier))
        return frozenset(members)

    def _screen(self, dfg, population, memo):
        """Genotype -> True when it is already one legal connected
        multi-op piece, decided for the whole generation in one batched
        bitset call.

        A True verdict means :func:`legalize_components` would hand the
        genotype back unchanged (one connected component, convex,
        port-legal, >=2 nodes), so :meth:`_fitness` can skip the repair
        walk entirely.  Genotypes already memoised need no verdict, and
        everything else (including when the kernel is disabled) takes
        the full repair path — results are identical either way.
        """
        view = bitset_view(dfg)
        if view is None:
            return {}
        fresh = []
        seen = set()
        for one in population:
            if len(one) >= 2 and one not in memo and one not in seen:
                seen.add(one)
                fresh.append(one)
        if not fresh:
            return {}
        legal = view.legal_rows(view.pack_rows(fresh), self.constraints)
        return {one: bool(ok) and view.is_connected(one)
                for one, ok in zip(fresh, legal)}

    def _fitness(self, dfg, members, fixed, best_cycles, memo, io_tables,
                 whole=False):
        """(saving, -area, candidate) of the best legal piece, or None.

        Memoised on the genotype so clones and elites re-score free
        even before the evalcache is consulted.  ``whole=True`` (from
        :meth:`_screen`) certifies the genotype is its own single legal
        piece, skipping the legalisation walk.
        """
        if members in memo:
            return memo[members]
        limit = self.constraints.max_ise_cycles
        best = None
        pieces = ([frozenset(members)] if whole
                  else legalize_components(dfg, members, self.constraints))
        for piece in pieces:
            candidate = ISECandidate(
                dfg, piece, self._min_delay_options(dfg, piece),
                self.technology, source="GA")
            if limit is not None and candidate.cycles > limit:
                continue
            cycles = self._evaluate(dfg, fixed + [candidate], io_tables)
            entry = (best_cycles - cycles, cycles, candidate)
            if best is None or _rank((entry, None)) < _rank((best, None)):
                best = entry
        memo[members] = best
        return best

    @staticmethod
    def _select(scored, rng):
        """Binary tournament: two uniform draws, the fitter wins."""
        a = scored[rng.randrange(len(scored))]
        b = scored[rng.randrange(len(scored))]
        return min([a, b], key=_rank)[1]

    @staticmethod
    def _crossover(mother, father, eligible, rng):
        """Uniform crossover: shared genes kept, disputed ones coin-flipped."""
        child = set(mother & father)
        for uid in sorted(mother ^ father):
            if rng.random() < 0.5:
                child.add(uid)
        while len(child) > MAX_GENES:
            child.discard(rng.choice(sorted(child)))
        return frozenset(child)

    @staticmethod
    def _mutate(members, eligible, rng):
        """Point mutation: each eligible gene flips with rate 1/|pool|."""
        rate = 1.0 / max(4, len(eligible))
        flipped = set(members)
        for uid in eligible:
            if rng.random() < rate:
                flipped ^= {uid}
        while len(flipped) > MAX_GENES:
            flipped.discard(rng.choice(sorted(flipped)))
        return frozenset(flipped)


def _rank(scored_entry):
    """Sort key over (fitness, individual): fitter first, None last.

    Fitness is ``(saving, cycles, candidate)``; higher saving then
    lower cycles then smaller area wins, with the member set as the
    deterministic tie-break.
    """
    fitness = scored_entry[0]
    if fitness is None:
        return (1, 0, 0, 0, ())
    saving, cycles, candidate = fitness
    return (0, -saving, cycles, candidate.area, sorted(candidate.members))
