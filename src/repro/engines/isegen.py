"""ISEGEN-style Kernighan-Lin cut growing (Biswas et al.).

Where the ACO engine *constructs* schedules and lets trails converge,
ISEGEN treats ISE identification as a min-cut partitioning problem and
improves a hardware/software cut by KL-style passes:

* a **pass** repeatedly toggles the single unlocked node (member out,
  or fringe neighbour in) whose move maximises a cheap structural
  quality function, locks it, and records the running quality;
* at pass end the move sequence is **reverted to its best prefix** —
  the KL trick that lets the search climb out of local optima by
  temporarily accepting worsening moves;
* passes repeat until one fails to improve on the incoming cut.

The quality function rewards collapsed dependence-chain length of each
connected component and penalises §4.2 violations (I/O-port excess,
non-convexity) instead of forbidding them — exactly ISEGEN's "steer,
don't clamp" approach; violations surviving the search are repaired by
the shared :func:`~repro.core.make_convex.legalize_components`
machinery before anything is scored for real.  Real scoring — which
candidate actually improves the block — goes through the shared
metered evaluator, so ISEGEN races ACO under identical budgets.

Restarts reseed the initial cut from the per-restart RNG stream
(``seed:restart:function:label``, the same derivation every engine
uses), keeping results reproducible serially and across the pool.
"""

import random

import networkx as nx

from ..errors import BudgetExhausted
from ..baselines.greedy import _chain, _fringe
from ..graph.analysis import io_counts, is_convex
from ..graph.bitset import bitset_view
from ..core.candidate import ISECandidate
from ..core.make_convex import legalize_components
from .base import ExplorationResult, ExplorerEngine

#: KL passes per round before the search is declared converged.
MAX_PASSES = 4
#: Toggle moves per pass (locks run out before this on small blocks).
MAX_MOVES = 16


class IsegenEngine(ExplorerEngine):
    """KL-style toggle/lock/revert iterative improvement."""

    name = "isegen"
    description = ("ISEGEN-style Kernighan-Lin cut growing: "
                   "toggle-based iterative improvement with locking "
                   "and best-prefix reversion")

    def explore(self, dfg, io_tables=None, jobs=None):
        """Best of ``restarts`` independent KL searches on one block.

        Restarts run serially (each is cheap — the inner loop is pure
        graph arithmetic; only candidate scoring hits the evaluator),
        so an attached budget meters every charge regardless of
        ``jobs``.
        """
        if io_tables is None:
            io_tables = self._default_tables(dfg)
        results = []
        for restart in range(self.params.restarts):
            rng = random.Random("{}:{}:{}:{}".format(
                self.seed, restart, dfg.function, dfg.label))
            try:
                results.append(self._explore_once(dfg, rng, io_tables))
            except BudgetExhausted:
                break
        if not results:
            raise BudgetExhausted(
                "evaluation budget exhausted before block {}:{} "
                "could be explored".format(dfg.function, dfg.label))
        best = None
        for result in results:
            if best is None or self._better(result, best):
                best = result
        return best

    # -- one restart: round-wise KL search ---------------------------------

    def _explore_once(self, dfg, rng, io_tables):
        base = self._evaluate(dfg, [], io_tables)
        candidates = []
        best_cycles = base
        rounds = moves = 0
        dry = 0
        limit = self.constraints.max_ise_cycles
        try:
            while rounds < self.params.max_rounds and dry < 2:
                rounds += 1
                taken = set().union(*(c.members for c in candidates)) \
                    if candidates else set()
                eligible = sorted(uid for uid in dfg.groupable_nodes()
                                  if uid not in taken)
                if len(eligible) < 2:
                    break
                cut, cut_moves = self._kl_search(dfg, eligible, rng)
                moves += cut_moves
                scored = []
                for members in legalize_components(dfg, cut,
                                                   self.constraints):
                    candidate = ISECandidate(
                        dfg, members,
                        self._min_delay_options(dfg, members),
                        self.technology, source="ISEGEN")
                    if limit is not None and candidate.cycles > limit:
                        continue
                    cycles = self._evaluate(dfg, candidates + [candidate],
                                            io_tables)
                    scored.append((cycles, candidate.area, candidate))
                if not scored:
                    dry += 1
                    continue
                scored.sort(key=lambda item: (item[0], item[1],
                                              sorted(item[2].members)))
                cycles, __, winner = scored[0]
                if cycles >= best_cycles:
                    dry += 1
                    continue
                dry = 0
                winner.cycle_saving = best_cycles - cycles
                candidates.append(winner)
                best_cycles = cycles
        except BudgetExhausted:
            pass
        return ExplorationResult(dfg, candidates, base, best_cycles,
                                 rounds, moves, engine=self.name)

    # -- the KL inner loop -------------------------------------------------

    def _kl_search(self, dfg, eligible, rng):
        """Toggle/lock/revert passes; returns (best cut, moves used)."""
        eligible_set = set(eligible)
        current = {rng.choice(eligible)}
        quality = {}          # frozenset -> cached quality
        best_set = set(current)
        best_quality = self._quality(dfg, current, quality)
        moves_used = 0
        for __ in range(MAX_PASSES):
            locked = set()
            trail = []        # the pass's toggle sequence, in order
            working = set(current)
            pass_best = self._quality(dfg, working, quality)
            pass_best_len = 0
            for __ in range(MAX_MOVES):
                frontier = [uid for uid in
                            sorted(working | _fringe(dfg, working))
                            if uid in eligible_set and uid not in locked]
                if not frontier:
                    break
                self._score_frontier(dfg, working, frontier, quality)
                move, move_quality = None, None
                for uid in frontier:
                    trial = working ^ {uid}
                    q = self._quality(dfg, trial, quality)
                    if move_quality is None or q > move_quality:
                        move, move_quality = uid, q
                working ^= {move}
                locked.add(move)
                trail.append(move)
                moves_used += 1
                if working and move_quality > pass_best:
                    pass_best = move_quality
                    pass_best_len = len(trail)
            # Best-prefix reversion: undo every toggle past the peak.
            for uid in trail[pass_best_len:]:
                working ^= {uid}
            if pass_best <= best_quality or working == current:
                break
            current = working
            best_quality = pass_best
            best_set = set(working)
        return best_set, moves_used

    def _score_frontier(self, dfg, working, frontier, memo):
        """Pre-fill the quality memo for a whole toggle frontier.

        Every trial's per-component port counts and convexity verdicts
        run as ONE batched bitset call instead of a set walk per probe;
        scores are then assembled with exactly :meth:`_quality`'s
        arithmetic (same component order, same float summation), so the
        memo contents are bit-identical to the scalar path's.  A no-op
        when the kernel is disabled — the per-trial loop then computes
        everything itself.
        """
        view = bitset_view(dfg)
        if view is None:
            return
        pending = []          # (memo key, [(component, is_big)] in order)
        big = []              # every >=2-node component, across trials
        for uid in frontier:
            key = frozenset(working ^ {uid})
            if not key or key in memo:
                continue
            sub = dfg.graph.subgraph(key)
            comps = [set(c) for c in nx.weakly_connected_components(sub)]
            pending.append((key, comps))
            big.extend(c for c in comps if len(c) >= 2)
        if not big:
            for key, comps in pending:
                score = 0.0
                for __ in comps:
                    score -= 0.05
                memo[key] = score
            return
        rows = view.pack_rows(big)
        n_in, n_out = view.io_counts_rows(rows)
        convex = view.convex_rows(rows)
        k = 0
        for key, comps in pending:
            score = 0.0
            for component in comps:
                if len(component) < 2:
                    score -= 0.05
                    continue
                gain = _chain(dfg, component) - 1.0
                excess = max(0, int(n_in[k]) - self.constraints.n_in)
                excess += max(0, int(n_out[k]) - self.constraints.n_out)
                penalty = 0.75 * excess
                if not convex[k]:
                    penalty += 1.0
                k += 1
                score += gain - penalty
            memo[key] = score

    def _quality(self, dfg, members, memo):
        """Cheap structural worth of a cut (memoised per round).

        Per connected component: collapsed-chain cycles saved, minus
        soft penalties for I/O-port excess and non-convexity (both
        repairable by legalisation, hence penalised rather than
        forbidden), minus a small drag per singleton so the search
        prefers compounding one region over scattering.
        """
        key = frozenset(members)
        cached = memo.get(key)
        if cached is not None:
            return cached
        score = 0.0
        if members:
            sub = dfg.graph.subgraph(members)
            for component in nx.weakly_connected_components(sub):
                component = set(component)
                if len(component) < 2:
                    score -= 0.05
                    continue
                gain = _chain(dfg, component) - 1.0
                n_in, n_out = io_counts(dfg, component)
                excess = max(0, n_in - self.constraints.n_in)
                excess += max(0, n_out - self.constraints.n_out)
                penalty = 0.75 * excess
                if not is_convex(dfg, component):
                    penalty += 1.0
                score += gain - penalty
        memo[key] = score
        return score
