"""Serve request validation, fingerprints and result payloads.

Requests are plain JSON objects (the framed bodies of
:mod:`repro.dist.protocol`'s serve extension).  Validation here is
strict and structural — unknown ops, unknown keys and wrong types are
:class:`RequestError` (answered as a structured ``ERR`` frame), while
semantic failures (an unknown workload or engine name) surface later
from the exploration machinery itself.

Two canonical keys drive the server's multiplexing:

* :func:`explore_fingerprint` — every request parameter that
  determines the exploration *outcome* (``jobs`` is excluded: results
  are bit-identical at any worker count).  Identical fingerprints are
  served from the scope lane's memo without re-exploring.
* :func:`compat_key` — the parameters that determine the *engine
  configuration* (machine, effort, seed, engine, batch).  Requests
  sharing a compat key can have their hot blocks fanned out in one
  ``explore_many`` dispatch: per-block RNG streams derive only from
  ``(seed, restart, function, label)``, so the batched dispatch is
  bit-identical to running the requests one-shot.

Result payloads are JSON-able dicts mirroring the frozen
:class:`repro.api.ExploreResult` / :class:`repro.api.SelectionResult`
fields; :func:`payload_digest` hashes their canonical JSON so clients
(and the adversarial journey suite) can assert bit-identity across
transports.
"""

import hashlib
import json

from ..errors import ReproError

#: Request-body ceiling (bytes of encoded JSON); far above any real
#: request, far below the 64 MiB frame cap — a body this large is a
#: malfunctioning client, not a big sweep.
MAX_BODY = 1 << 20

#: The ops a serve request may carry.
OPS = ("explore", "evaluate", "sweep", "submit", "poll", "fetch",
       "cancel", "status", "subscribe")

#: Explore parameter defaults — exactly :func:`repro.api.explore`'s.
EXPLORE_DEFAULTS = {
    "issue": 2,
    "ports": "4/2",
    "profile": "quick",
    "seed": 0,
    "opt": "O3",
    "iterations": None,
    "restarts": None,
    "engine": "aco",
    "jobs": None,
    "batch": None,
}

#: Evaluate adds the selection budget on top of the explore params.
EVALUATE_DEFAULTS = {
    "max_area": None,
    "max_ises": None,
    "enable_sharing": True,
}

#: Sweep grid defaults (None → the api-level paper defaults).
SWEEP_DEFAULTS = {
    "machines": None,
    "budgets": None,
    "opt": "O3",
    "profile": "quick",
    "seed": 0,
    "engine": "aco",
    "jobs": None,
    "batch": None,
    "iterations": None,
    "restarts": None,
    "shard": None,
}


class RequestError(ReproError):
    """A structurally invalid serve request (answered as ERR)."""

    def __init__(self, message, code="bad-request"):
        super().__init__(message)
        self.code = code


def _require(condition, message, code="bad-request"):
    if not condition:
        raise RequestError(message, code=code)


def _take_int(body, name, default, required=False, optional=True):
    value = body.pop(name, default)
    if value is None and optional and not required:
        return None
    _require(isinstance(value, int) and not isinstance(value, bool),
             "{!r} must be an integer".format(name))
    return value


def _take_str(body, name, default=None, required=False):
    value = body.pop(name, default)
    if required:
        _require(isinstance(value, str) and value,
                 "{!r} must be a non-empty string".format(name))
        return value
    if value is None:
        return None
    _require(isinstance(value, str), "{!r} must be a string".format(name))
    return value


def _take_number(body, name, default=None):
    value = body.pop(name, default)
    if value is None:
        return None
    _require(isinstance(value, (int, float))
             and not isinstance(value, bool),
             "{!r} must be a number".format(name))
    return value


def _take_bool(body, name, default):
    value = body.pop(name, default)
    _require(isinstance(value, bool),
             "{!r} must be a boolean".format(name))
    return value


def _take_timeout(body):
    timeout = _take_number(body, "timeout")
    if timeout is not None:
        _require(timeout > 0, "'timeout' must be positive")
    return timeout


def _explore_params(body):
    params = {"workload": _take_str(body, "workload", required=True)}
    for name in ("issue", "seed", "iterations", "restarts", "jobs",
                 "batch"):
        params[name] = _take_int(body, name, EXPLORE_DEFAULTS[name])
    for name in ("ports", "opt", "engine"):
        params[name] = _take_str(body, name, EXPLORE_DEFAULTS[name])
    params["profile"] = _take_str(body, "profile",
                                  EXPLORE_DEFAULTS["profile"])
    _require(params["issue"] is not None and params["issue"] >= 1,
             "'issue' must be a positive integer")
    _require(params["seed"] is not None, "'seed' must be an integer")
    return params


def _reject_unknown(body, op):
    if body:
        raise RequestError(
            "unknown key(s) for op {!r}: {}".format(
                op, ", ".join(sorted(repr(k) for k in body))))


def validate_request(body):
    """Normalise one request body; raises :class:`RequestError`.

    Returns a fresh dict with ``op``, every op parameter defaulted, and
    (for the execution ops) an optional ``timeout``.  Unknown ops and
    unknown keys are rejected rather than ignored — a fuzzer's garbage
    must never silently select defaults.
    """
    _require(isinstance(body, dict), "request body must be a JSON object")
    body = dict(body)
    op = body.pop("op", None)
    _require(isinstance(op, str), "request needs a string 'op'")
    if op not in OPS:
        raise RequestError(
            "unknown op {!r}; choose from {}".format(op, ", ".join(OPS)),
            code="bad-op")
    req = {"op": op}
    if op in ("explore", "submit"):
        req.update(_explore_params(body))
        req["timeout"] = _take_timeout(body)
    elif op == "evaluate":
        req.update(_explore_params(body))
        req["max_area"] = _take_number(body, "max_area")
        req["max_ises"] = _take_int(body, "max_ises", None)
        req["enable_sharing"] = _take_bool(body, "enable_sharing", True)
        req["timeout"] = _take_timeout(body)
    elif op == "sweep":
        workloads = body.pop("workloads", None)
        _require(isinstance(workloads, list) and workloads
                 and all(isinstance(w, str) and w for w in workloads),
                 "'workloads' must be a non-empty list of names")
        req["workloads"] = list(workloads)
        machines = body.pop("machines", SWEEP_DEFAULTS["machines"])
        if machines is not None:
            _require(isinstance(machines, list) and all(
                isinstance(m, (list, tuple)) and len(m) == 2
                and isinstance(m[0], str) and isinstance(m[1], int)
                for m in machines),
                "'machines' must be a list of [ports, issue] pairs")
            machines = [(ports, issue) for ports, issue in machines]
        req["machines"] = machines
        budgets = body.pop("budgets", SWEEP_DEFAULTS["budgets"])
        if budgets is not None:
            _require(isinstance(budgets, list) and budgets and all(
                isinstance(b, (int, float)) and not isinstance(b, bool)
                for b in budgets),
                "'budgets' must be a non-empty list of numbers")
        req["budgets"] = budgets
        shard = body.pop("shard", SWEEP_DEFAULTS["shard"])
        if shard is not None:
            _require(isinstance(shard, (list, tuple)) and len(shard) == 2
                     and all(isinstance(s, int) and not isinstance(s, bool)
                             for s in shard),
                     "'shard' must be an [index, count] pair")
            shard = (shard[0], shard[1])
        req["shard"] = shard
        for name in ("seed", "iterations", "restarts", "jobs", "batch"):
            req[name] = _take_int(body, name, SWEEP_DEFAULTS[name])
        for name in ("opt", "engine"):
            req[name] = _take_str(body, name, SWEEP_DEFAULTS[name])
        req["profile"] = _take_str(body, "profile",
                                   SWEEP_DEFAULTS["profile"])
        req["timeout"] = _take_timeout(body)
    elif op in ("poll", "fetch"):
        req["job"] = _take_str(body, "job", required=True)
    elif op == "cancel":
        req["request"] = _take_int(body, "request", None)
        req["job"] = _take_str(body, "job")
        _require((req["request"] is None) != (req["job"] is None),
                 "cancel needs exactly one of 'request' or 'job'")
    elif op == "subscribe":
        req["events"] = _take_bool(body, "events", True)
    # "status" carries no parameters.
    _reject_unknown(body, op)
    return req


# -- canonical keys ----------------------------------------------------------

#: Explore params that determine the exploration outcome.  ``jobs`` is
#: deliberately absent — fan-out width never changes results.
_FINGERPRINT_FIELDS = ("workload", "opt", "issue", "ports", "profile",
                      "seed", "iterations", "restarts", "engine", "batch")

#: Fingerprint fields minus the per-request program identity: requests
#: agreeing here share one engine configuration and may be batched into
#: a single ``explore_many`` dispatch.  ``jobs`` is included so one
#: dispatch has one unambiguous width.
_COMPAT_FIELDS = ("issue", "ports", "profile", "seed", "iterations",
                  "restarts", "engine", "batch", "jobs")


def explore_fingerprint(req):
    """Canonical identity of one exploration request's *outcome*."""
    return json.dumps({name: req[name] for name in _FINGERPRINT_FIELDS},
                      sort_keys=True)


def compat_key(req):
    """Canonical identity of one request's engine configuration."""
    return json.dumps({name: req[name] for name in _COMPAT_FIELDS},
                      sort_keys=True)


def request_scope(req):
    """The serve lane key: the machine's shared-evalcache scope string.

    Explore/evaluate requests land on the lane of their machine scope
    (the same string that qualifies shared/remote evalcache keys, so
    "same lane" and "same cache scope" are one concept); sweeps span
    machines and run on a dedicated ``sweep`` lane.
    """
    if req["op"] == "sweep":
        return "sweep"
    from ..hwlib.technology import DEFAULT_TECHNOLOGY
    from ..sched.machine import MachineConfig
    from ..core.evalcache import eval_scope

    machine = MachineConfig(req["issue"], req["ports"])
    return eval_scope(machine, DEFAULT_TECHNOLOGY)


# -- result payloads ---------------------------------------------------------

def explore_payload(result):
    """JSON-able dict of one :class:`repro.api.ExploreResult`."""
    return {
        "kind": "explore",
        "workload": result.workload, "opt": result.opt,
        "issue": result.issue, "ports": result.ports,
        "profile": result.profile, "seed": result.seed,
        "engine": result.engine,
        "baseline_cycles": result.baseline_cycles,
        "candidates": list(result.candidates),
    }


def selection_payload(result):
    """JSON-able dict of one :class:`repro.api.SelectionResult`."""
    return {
        "kind": "selection",
        "workload": result.workload, "opt": result.opt,
        "issue": result.issue, "ports": result.ports,
        "max_area": result.max_area, "max_ises": result.max_ises,
        "baseline_cycles": result.baseline_cycles,
        "final_cycles": result.final_cycles,
        "reduction": result.reduction,
        "num_ises": result.num_ises, "area": result.area,
        "ises": list(result.ises),
    }


def payload_digest(payload):
    """Content digest of one result payload's canonical JSON.

    Floats serialise via ``repr`` round-tripping in :mod:`json`, so two
    payloads digest equal iff they are bit-identical — the property the
    adversarial journeys assert across concurrent clients.
    """
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def explore_digest(payload):
    """Digest of an explore payload or raw response body.

    Accepts either :func:`explore_payload` output or a served response
    dict carrying the same keys (extra bookkeeping keys — ``digest``
    itself, timings — are ignored so client and server agree).
    """
    keys = ("kind", "workload", "opt", "issue", "ports", "profile",
            "seed", "engine", "baseline_cycles", "candidates")
    return payload_digest({name: payload[name] for name in keys
                           if name in payload})


def selection_digest(payload):
    """Digest of a selection payload or raw response body."""
    keys = ("kind", "workload", "opt", "issue", "ports", "max_area",
            "max_ises", "baseline_cycles", "final_cycles", "reduction",
            "num_ises", "area", "ises")
    return payload_digest({name: payload[name] for name in keys
                           if name in payload})
