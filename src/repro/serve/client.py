"""The blocking :class:`ServiceClient` for ``repro serve``.

One TCP connection, framed JSON requests, client-chosen request ids.
The client is deliberately small and synchronous — journeys, tests and
scripts drive it from plain threads; concurrency across *clients* is
the server's job.  Because responses are multiplexed by id, the client
may send several requests before reading (``send``/``wait``), and any
``EVENT`` frames that arrive while waiting are collected on
:attr:`events` instead of being mistaken for answers.

Server-side failures surface as :class:`ServiceError` carrying the
structured ``code`` from the wire (``bad-request``, ``quota``,
``timeout``, ``cancelled``, ``protocol``, ``pending`` …); transport
failures use code ``connection``.
"""

import itertools
import socket

from ..dist import protocol
from ..errors import ReproError


class ServiceError(ReproError):
    """A structured error answered by (or about) the explore server."""

    def __init__(self, message, code="error"):
        super().__init__(message)
        self.code = code


class ServiceClient:
    """Blocking framed-JSON client of one :class:`ExploreServer`.

    ``address`` is ``host:port`` (or ``(host, port)``); ``timeout`` is
    the socket-level ceiling on any single recv — explorations answered
    slower than this surface as a ``connection`` ServiceError, so size
    it to the effort profile being served.
    """

    def __init__(self, address, timeout=120.0):
        if isinstance(address, str):
            host, __, port = address.rpartition(":")
            try:
                address = (host, int(port))
            except ValueError:
                raise ServiceError(
                    "malformed server address {!r}".format(address),
                    code="connection") from None
        try:
            self._sock = socket.create_connection(address, timeout=timeout)
        except OSError as error:
            raise ServiceError(
                "cannot connect to {}: {}".format(address, error),
                code="connection") from None
        self._ids = itertools.count(1)
        self._pending = {}         # request_id -> (kind, body)
        #: ``(request_id, record)`` EVENT frames seen while waiting.
        self.events = []

    # -- low-level multiplexing -------------------------------------------

    def send(self, body):
        """Send one request frame; returns its request id (no wait)."""
        request_id = next(self._ids)
        frame = protocol.pack_frame(
            protocol.encode_serve_request(request_id, body))
        try:
            self._sock.sendall(frame)
        except OSError as error:
            raise ServiceError(
                "connection lost while sending: {}".format(error),
                code="connection") from None
        return request_id

    def wait(self, request_id):
        """Block until ``request_id`` is answered; OK body or raise."""
        while True:
            if request_id in self._pending:
                kind, body = self._pending.pop(request_id)
            else:
                kind, answered, body = self._read_response()
                if kind == "event":
                    self.events.append((answered, body))
                    continue
                if answered != request_id:
                    self._pending[answered] = (kind, body)
                    continue
            if kind == "ok":
                return body
            raise ServiceError(body.get("error", "server error"),
                               code=body.get("code", "error"))

    def request(self, body):
        """Send one request and block for its answer."""
        return self.wait(self.send(body))

    def _read_response(self):
        prefix = self._recv_exact(4)
        payload = self._recv_exact(protocol.frame_length(prefix))
        return protocol.decode_serve_response(payload)

    def _recv_exact(self, n):
        chunks = []
        remaining = n
        while remaining:
            try:
                chunk = self._sock.recv(remaining)
            except OSError as error:
                raise ServiceError(
                    "connection lost: {}".format(error),
                    code="connection") from None
            if not chunk:
                raise ServiceError("server closed the connection",
                                   code="connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    # -- operations --------------------------------------------------------

    def explore(self, workload, **params):
        """Served :func:`repro.api.explore`; returns the payload dict."""
        return self.request(dict(params, op="explore", workload=workload))

    def evaluate(self, workload, **params):
        """Served :func:`repro.api.evaluate` (explore + selection)."""
        return self.request(dict(params, op="evaluate", workload=workload))

    def sweep(self, workloads, **params):
        """Served :func:`repro.api.sweep`; returns the sweep payload."""
        return self.request(dict(params, op="sweep",
                                 workloads=list(workloads)))

    def submit(self, workload, **params):
        """Fire-and-forget exploration; returns the job id."""
        return self.request(
            dict(params, op="submit", workload=workload))["job"]

    def poll(self, job):
        """Job state string (``pending``/``done``/``error``/...)."""
        return self.request({"op": "poll", "job": job})["state"]

    def fetch(self, job):
        """Result payload of a finished job (ServiceError otherwise)."""
        return self.request({"op": "fetch", "job": job})

    def cancel(self, request=None, job=None):
        """Cancel an in-flight request id or a pending job."""
        body = {"op": "cancel"}
        if request is not None:
            body["request"] = request
        if job is not None:
            body["job"] = job
        return self.request(body)

    def status(self):
        """Server status: counters, scopes, jobs, session count."""
        return self.request({"op": "status"})

    def subscribe(self, events=True):
        """Opt in/out of EVENT streaming for *subsequent* requests."""
        return self.request({"op": "subscribe", "events": events})

    # -- lifecycle ---------------------------------------------------------

    def close(self):
        """Close the connection (idempotent)."""
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
