"""Per-machine-scope worker lanes: batching, memoing, fan-out.

The server (:mod:`repro.serve.server`) never explores on its event
loop.  Each request is wrapped in a :class:`WorkItem` and queued onto
the :class:`ScopeLane` of its machine scope — the same scope string
that qualifies shared/remote evalcache keys
(:func:`repro.core.evalcache.eval_scope`), so requests that can share
evaluation work share a lane by construction.  One daemon thread per
lane drains its queue in batches:

1. **memo** — a request whose :func:`~repro.serve.schema.explore_fingerprint`
   was already explored on this lane answers from the lane's bounded
   LRU memo (the exploration is a pure function of the fingerprint);
2. **batch** — the remaining requests are grouped by
   :func:`~repro.serve.schema.compat_key`; each group's hot blocks are
   fanned out in **one** ``explore_many`` dispatch over the shared
   worker pool, exactly as :meth:`ISEDesignFlow._explore_hot_blocks`
   would for a single application.  Per-block RNG streams derive only
   from ``(seed, restart, function, label)`` and the evalcache memoises
   exactly what recomputation would produce, so the batched dispatch is
   bit-identical to running each request one-shot;
3. **fan-out** — results are sliced back per request and each item
   answered through its thread-safe ``deliver``/``fail`` callbacks
   (the server bridges these onto its event loop).

Sweeps span machines, so they run unbatched on a dedicated ``sweep``
lane, delegating to :func:`repro.api.sweep` wholesale.
"""

import queue
import threading
from collections import OrderedDict

from ..config import ISEConstraints
from ..core.flow import ExploredApplication, ISEDesignFlow
from ..core.parallel import resolve_jobs
from ..ir.passes.pipeline import optimize
from ..obs import NULL_OBSERVER, CallbackSink, Observer
from ..sched.machine import MachineConfig
from ..workloads import get_workload
from . import schema

#: Default per-lane memo bound (explorations kept hot for re-fetch).
DEFAULT_MEMO_ENTRIES = 64

_STOP = object()


class WorkItem:
    """One queued request plus its completion/event callbacks.

    ``deliver``/``fail`` are called at most once, from the lane thread
    (the server marshals them back onto its loop); after either — or
    after :meth:`abandon` (timeout / cancel / dropped connection) — the
    item is *dead*: later completions and events are silently dropped,
    so a lane never races a client that already got its answer.
    """

    __slots__ = ("request", "events", "_deliver", "_fail", "_dead")

    def __init__(self, request, deliver, fail, events=None):
        self.request = request
        self.events = events
        self._deliver = deliver
        self._fail = fail
        self._dead = threading.Event()

    def live(self):
        """True until the item completed or was abandoned."""
        return not self._dead.is_set()

    def abandon(self):
        """Drop the item: later deliver/fail/events become no-ops."""
        self._dead.set()

    def deliver(self, payload):
        """Answer the item (first completion wins)."""
        if not self._dead.is_set():
            self._dead.set()
            self._deliver(payload)

    def fail(self, error):
        """Fail the item (first completion wins)."""
        if not self._dead.is_set():
            self._dead.set()
            self._fail(error)

    def emit(self, record):
        """Forward one progress record, if anyone is listening."""
        if self.events is not None and not self._dead.is_set():
            self.events(record)


class ScopeLane:
    """One scope's queue + daemon worker thread + exploration memo."""

    def __init__(self, scope, counters=None,
                 memo_entries=DEFAULT_MEMO_ENTRIES):
        self.scope = scope
        self.counters = counters      # callable ``bump(name, n)`` or None
        self.memo_entries = memo_entries
        self._memo = OrderedDict()    # fingerprint -> (payload, explored, flow)
        self._queue = queue.Queue()
        self._thread = None
        self._start_lock = threading.Lock()

    # -- public surface ----------------------------------------------------

    def submit(self, item):
        """Queue one :class:`WorkItem` (starts the thread lazily)."""
        with self._start_lock:
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, daemon=True,
                    name="repro-serve-lane")
                self._thread.start()
        self._queue.put(item)

    def stop(self, timeout=30.0):
        """Stop the lane thread after the work already queued drains."""
        with self._start_lock:
            thread = self._thread
        if thread is None:
            return
        self._queue.put(_STOP)
        thread.join(timeout=timeout)

    def memo_size(self):
        """Number of explorations currently memoised."""
        return len(self._memo)

    def _bump(self, name, n=1):
        if self.counters is not None:
            self.counters(name, n)

    # -- lane loop ---------------------------------------------------------

    def _run(self):
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            batch = [item]
            stopping = False
            while True:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    stopping = True
                    break
                batch.append(extra)
            batch = [i for i in batch if i.live()]
            sweeps = [i for i in batch if i.request["op"] == "sweep"]
            explores = [i for i in batch if i.request["op"] != "sweep"]
            groups = OrderedDict()
            for i in explores:
                groups.setdefault(schema.compat_key(i.request), []).append(i)
            for items in groups.values():
                try:
                    self._process_group(items)
                except Exception as error:
                    for i in items:
                        i.fail(error)
            for i in sweeps:
                try:
                    self._run_sweep(i)
                except Exception as error:
                    i.fail(error)
            if stopping:
                return

    # -- explore / evaluate ------------------------------------------------

    def _process_group(self, items):
        """Serve one compat group: memo first, batch the rest."""
        fresh = OrderedDict()
        for item in items:
            fingerprint = schema.explore_fingerprint(item.request)
            entry = self._memo.get(fingerprint)
            if entry is not None:
                self._memo.move_to_end(fingerprint)
                self._bump("serve.memo_hits")
                self._finish(item, entry)
            else:
                fresh.setdefault(fingerprint, []).append(item)
        if not fresh:
            return
        if len(fresh) > 1:
            self._bump("serve.batched_dispatches")
            self._bump("serve.batched_requests",
                       sum(len(v) for v in fresh.values()))
        self._explore_group(fresh)

    def _explore_group(self, fresh):
        """Explore every unique fingerprint in one pool dispatch.

        Mirrors :func:`repro.api.explore` +
        :meth:`ISEDesignFlow.explore_application` stage by stage, with
        the single difference that the hot blocks of *all* requests in
        the group ride one ``_explore_hot_blocks`` fan-out.  The result
        assembly per request is byte-for-byte the flow's own.
        """
        from ..api import ExploreResult, _resolve_params

        targets = [i for waiters in fresh.values() for i in waiters
                   if i.events is not None]
        if targets:
            def fan_out(record):
                for listener in targets:
                    listener.emit(record)
            group_obs = Observer(sinks=[CallbackSink(fan_out)])
        else:
            group_obs = NULL_OBSERVER
        prepared = []
        for fingerprint, waiters in fresh.items():
            req = waiters[0].request
            params, max_blocks = _resolve_params(
                req["profile"], req["iterations"], req["restarts"])
            flow_kwargs = dict(params=params, seed=req["seed"],
                               jobs=req["jobs"], batch=req["batch"],
                               obs=group_obs, engine=req["engine"])
            if max_blocks is not None:
                flow_kwargs["max_blocks"] = max_blocks
            flow = ISEDesignFlow(MachineConfig(req["issue"], req["ports"]),
                                 **flow_kwargs)
            bundle = get_workload(req["workload"])
            program, args = bundle.build()
            program = optimize(program, req["opt"])
            blocks = flow.profile_blocks(program, args=args)
            hot = flow._select_hot_blocks(blocks)
            prepared.append((fingerprint, waiters, req, bundle, flow,
                             program, blocks, hot))
        flow0 = prepared[0][4]
        explorer = flow0._explorer_factory(flow0)
        jobs = resolve_jobs(flow0.jobs, obs=group_obs)
        all_hot = [b for entry in prepared for b in entry[7]]
        results = ISEDesignFlow._explore_hot_blocks(explorer, all_hot, jobs)
        position = 0
        try:
            for (fingerprint, waiters, req, bundle, flow, program, blocks,
                 hot) in prepared:
                block_results = results[position:position + len(hot)]
                position += len(hot)
                candidates = []
                explored_labels = []
                for instance, result in zip(hot, block_results):
                    explored_labels.append(
                        (instance.function, instance.label))
                    for candidate in result.candidates:
                        candidate.weighted_saving = (
                            candidate.cycle_saving * instance.freq)
                        candidates.append(candidate)
                explored = ExploredApplication(
                    program, flow.machine, blocks, candidates,
                    explored_labels, flow.technology, flow.constraints)
                api_result = ExploreResult(
                    workload=bundle.name, opt=req["opt"],
                    issue=req["issue"], ports=req["ports"],
                    profile=req["profile"], seed=req["seed"],
                    baseline_cycles=explored.baseline_cycles,
                    candidates=tuple(c.describe()
                                     for c in explored.candidates),
                    engine=req["engine"], explored=explored, flow=flow)
                payload = schema.explore_payload(api_result)
                payload["digest"] = schema.explore_digest(payload)
                entry = (payload, explored, flow)
                self._memo[fingerprint] = entry
                while len(self._memo) > self.memo_entries:
                    self._memo.popitem(last=False)
                for item in waiters:
                    self._finish(item, entry)
        finally:
            # Drop the group observer so memoised flows never hold a
            # reference chain back to completed sessions.
            for entry in prepared:
                entry[4].obs = NULL_OBSERVER

    def _finish(self, item, entry):
        """Answer one item from a (payload, explored, flow) entry."""
        payload, explored, flow = entry
        try:
            if item.request["op"] == "evaluate":
                item.deliver(self._select(item.request, explored, flow))
            else:
                item.deliver(dict(payload))
        except Exception as error:
            item.fail(error)

    @staticmethod
    def _select(req, explored, flow):
        """Budgeted selection on a finished exploration (deterministic)."""
        constraints = ISEConstraints(max_area=req["max_area"],
                                     max_ises=req["max_ises"])
        report = flow.evaluate(explored, constraints,
                               enable_sharing=req["enable_sharing"])
        payload = {
            "kind": "selection",
            "workload": req["workload"], "opt": req["opt"],
            "issue": req["issue"], "ports": req["ports"],
            "max_area": req["max_area"], "max_ises": req["max_ises"],
            "baseline_cycles": report.baseline_cycles,
            "final_cycles": report.final_cycles,
            "reduction": report.reduction,
            "num_ises": report.num_ises, "area": report.area,
            "ises": [entry.representative.describe()
                     for entry in report.selection.selected],
        }
        payload["digest"] = schema.selection_digest(payload)
        return payload

    # -- sweep -------------------------------------------------------------

    def _run_sweep(self, item):
        """One design-space sweep, delegated to the api wholesale."""
        from ..api import sweep

        req = item.request
        observer = None
        if item.events is not None:
            observer = Observer(sinks=[CallbackSink(item.emit)])
        result = sweep(
            req["workloads"], machines=req["machines"],
            budgets=req["budgets"], opt=req["opt"],
            profile=req["profile"], seed=req["seed"],
            engine=req["engine"], jobs=req["jobs"], batch=req["batch"],
            iterations=req["iterations"], restarts=req["restarts"],
            shard=req["shard"], observer=observer)
        item.deliver(result.to_payload())


class ScopeRegistry:
    """Lazily-created :class:`ScopeLane` per scope string."""

    def __init__(self, counters=None, memo_entries=DEFAULT_MEMO_ENTRIES):
        self.counters = counters
        self.memo_entries = memo_entries
        self._lanes = {}
        self._lock = threading.Lock()

    def lane(self, scope):
        """The lane of ``scope``, created on first use."""
        with self._lock:
            lane = self._lanes.get(scope)
            if lane is None:
                lane = ScopeLane(scope, counters=self.counters,
                                 memo_entries=self.memo_entries)
                self._lanes[scope] = lane
            return lane

    def scopes(self):
        """The scope strings with a live lane, sorted."""
        with self._lock:
            return sorted(self._lanes)

    def close(self):
        """Stop every lane (idempotent; queued work drains first)."""
        with self._lock:
            lanes = list(self._lanes.values())
            self._lanes.clear()
        for lane in lanes:
            lane.stop()
