"""Exploration-as-a-service: the long-lived ``repro serve`` daemon.

One asyncio process multiplexes many concurrent clients onto the
expensive exploration machinery:

* :mod:`repro.serve.schema` — request validation, canonical request
  fingerprints and result payloads/digests;
* :mod:`repro.serve.session` — per-machine-scope worker lanes that
  batch compatible queued requests into single pool dispatches;
* :mod:`repro.serve.server` — the TCP front end (framed JSON over the
  :mod:`repro.dist.protocol` length-prefix discipline) with per-client
  quotas, request timeouts, cancellation and event streaming;
* :mod:`repro.serve.client` — the small blocking :class:`ServiceClient`.

Every served result is bit-identical to the one-shot
:func:`repro.api.explore` / :func:`repro.api.evaluate` /
:func:`repro.api.sweep` call with the same request — batching, memoing
and multiplexing are throughput optimisations, never semantic ones.
See docs/SERVICE.md for the wire format and operational notes.
"""

from .client import ServiceClient, ServiceError
from .schema import RequestError, explore_digest, payload_digest
from .server import ExploreServer

__all__ = [
    "ExploreServer",
    "RequestError",
    "ServiceClient",
    "ServiceError",
    "explore_digest",
    "payload_digest",
]
