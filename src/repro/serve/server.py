"""The exploration service front end: ``repro serve``.

One asyncio process accepts framed-JSON requests (the serve extension
of :mod:`repro.dist.protocol`) and multiplexes them onto per-scope
worker lanes (:mod:`repro.serve.session`).  The event loop never
explores: every execution request becomes a :class:`WorkItem` whose
completion is marshalled back via ``loop.call_soon_threadsafe``, so the
loop stays responsive for status probes, cancels and new connections
while explorations grind on lane threads and the shared worker pool.

Connection discipline mirrors :class:`repro.dist.server.EvalCacheServer`
— one read loop per connection, length-prefix validation first — with
two differences a service needs:

* **multiplexing** — the client chooses a ``request_id`` per request
  and any number may be in flight on one connection; responses and
  streamed ``EVENT`` frames carry the id back;
* **resilience** — a malformed *body* inside an intact frame answers a
  structured ``ERR`` and the connection keeps serving (only corrupt
  framing, where no resync point exists, drops the connection).  The
  server loop itself survives both, plus any exploration failure
  (including a pool worker dying mid-dispatch).

Per-client quotas (``max_inflight``), per-request timeouts, cancel and
a fire-and-forget ``submit``/``poll``/``fetch`` job surface round out
the contract; ``serve.*`` counters (see docs/OBSERVABILITY.md) expose
everything the status op reports.
"""

import argparse
import asyncio
import itertools
import threading

from ..dist import protocol
from . import schema
from .schema import RequestError
from .session import DEFAULT_MEMO_ENTRIES, ScopeRegistry, WorkItem

#: Default TCP port (overridden by ``--port`` / the client address).
DEFAULT_PORT = 7208

#: Default per-connection in-flight request quota.
DEFAULT_MAX_INFLIGHT = 8


class _Session:
    """Per-connection state: subscription, in-flight table, writer."""

    def __init__(self, sid, writer):
        self.sid = sid
        self.writer = writer
        self.subscribed = False
        self.alive = True
        self.inflight = {}        # request_id -> (WorkItem, cancel_fn)
        self.tasks = set()
        self.wlock = asyncio.Lock()

    def push_event(self, request_id, record):
        """Write one EVENT frame (loop thread, best-effort)."""
        if not self.alive or not self.subscribed:
            return False
        try:
            self.writer.write(protocol.pack_frame(
                protocol.encode_serve_event(request_id, record)))
        except (ConnectionError, OSError, protocol.ProtocolError):
            return False
        return True


class ExploreServer:
    """Asyncio TCP front end over the scope-lane registry.

    Lifecycle matches the evalcache server: :meth:`start_in_thread`
    from tests/benchmarks (returns the bound port), :meth:`run_blocking`
    from the CLI, :meth:`stop` for an idempotent teardown that also
    drains the lanes and releases the worker pool.
    """

    def __init__(self, host="127.0.0.1", port=0,
                 max_inflight=DEFAULT_MAX_INFLIGHT, request_timeout=None,
                 memo_entries=DEFAULT_MEMO_ENTRIES):
        self.host = host
        self.port = port
        self.max_inflight = max(1, int(max_inflight))
        self.request_timeout = request_timeout
        self.counters = {}
        self._counter_lock = threading.Lock()
        self.registry = ScopeRegistry(counters=self.bump,
                                      memo_entries=memo_entries)
        self.jobs = {}            # job id -> state dict
        self._job_seq = itertools.count(1)
        self._sid_seq = itertools.count(1)
        self._sessions = set()
        self._server = None
        self._loop = None
        self._thread = None
        self._started = threading.Event()
        self._stop_lock = threading.Lock()

    def bump(self, name, n=1):
        """Thread-safe counter increment (lanes call this too)."""
        with self._counter_lock:
            self.counters[name] = self.counters.get(name, 0) + n

    # -- connection loop ---------------------------------------------------

    async def _serve_connection(self, reader, writer):
        self.bump("serve.connections")
        loop = asyncio.get_running_loop()
        session = _Session(next(self._sid_seq), writer)
        self._sessions.add(session)
        try:
            while True:
                prefix = await reader.read(4)
                if not prefix:
                    break
                while len(prefix) < 4:
                    more = await reader.read(4 - len(prefix))
                    if not more:
                        break
                    prefix += more
                try:
                    length = protocol.frame_length(prefix)
                except protocol.ProtocolError as error:
                    # Corrupt framing: no resync point exists past an
                    # oversized/truncated prefix — answer and drop.
                    self.bump("serve.protocol_errors")
                    await self._write(session, protocol.encode_serve_err(
                        0, error, code="protocol"))
                    break
                try:
                    payload = await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    break
                if length > schema.MAX_BODY:
                    self.bump("serve.protocol_errors")
                    await self._write(session, protocol.encode_serve_err(
                        0, "request of {} bytes exceeds the {} byte "
                        "body limit".format(length, schema.MAX_BODY),
                        code="protocol"))
                    continue
                try:
                    request_id, body = protocol.decode_serve_request(payload)
                except protocol.ProtocolError as error:
                    # The frame itself was intact, so the stream is
                    # still in sync: answer ERR and keep serving.
                    self.bump("serve.protocol_errors")
                    await self._write(session, protocol.encode_serve_err(
                        0, error, code="protocol"))
                    continue
                task = loop.create_task(
                    self._handle(session, request_id, body))
                session.tasks.add(task)
                task.add_done_callback(session.tasks.discard)
        except asyncio.CancelledError:
            pass                   # server shutdown mid-connection
        except (ConnectionError, OSError):
            pass
        finally:
            session.alive = False
            for item, __ in list(session.inflight.values()):
                item.abandon()
            for task in list(session.tasks):
                task.cancel()
            self._sessions.discard(session)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _write(self, session, payload):
        if not session.alive:
            return
        async with session.wlock:
            try:
                session.writer.write(protocol.pack_frame(payload))
                await session.writer.drain()
            except (ConnectionError, OSError):
                session.alive = False

    async def _err(self, session, request_id, message, code="error"):
        self.bump("serve.errors")
        await self._write(session, protocol.encode_serve_err(
            request_id, message, code=code))

    # -- request dispatch --------------------------------------------------

    async def _handle(self, session, request_id, body):
        self.bump("serve.requests")
        try:
            req = schema.validate_request(body)
        except RequestError as error:
            await self._err(session, request_id, error, code=error.code)
            return
        try:
            op = req["op"]
            if op == "status":
                await self._write(session, protocol.encode_serve_ok(
                    request_id, self._status()))
            elif op == "subscribe":
                session.subscribed = req["events"]
                await self._write(session, protocol.encode_serve_ok(
                    request_id, {"subscribed": session.subscribed}))
            elif op == "cancel":
                await self._handle_cancel(session, request_id, req)
            elif op == "poll":
                await self._handle_poll(session, request_id, req)
            elif op == "fetch":
                await self._handle_fetch(session, request_id, req)
            elif op == "submit":
                await self._handle_submit(session, request_id, req)
            else:                  # explore / evaluate / sweep
                await self._execute(session, request_id, req)
        except asyncio.CancelledError:
            raise
        except Exception as error:
            # Defensive: an unexpected failure answers this request
            # and never takes the server loop down with it.
            await self._err(session, request_id, error)

    def _item_callbacks(self, session, request_id, loop, resolve, reject):
        """Thread-safe deliver/fail/events bridges for one request."""
        def deliver(payload):
            loop.call_soon_threadsafe(resolve, payload)

        def fail(error):
            loop.call_soon_threadsafe(reject, error)

        events = None
        if session.subscribed:
            def events(record):
                loop.call_soon_threadsafe(
                    self._push_event, session, request_id, record)
        return deliver, fail, events

    def _push_event(self, session, request_id, record):
        if session.push_event(request_id, record):
            self.bump("serve.events")

    async def _execute(self, session, request_id, req):
        if len(session.inflight) >= self.max_inflight:
            self.bump("serve.quota_rejections")
            await self._err(
                session, request_id,
                "client has {} request(s) in flight (limit {})".format(
                    len(session.inflight), self.max_inflight),
                code="quota")
            return
        loop = asyncio.get_running_loop()
        future = loop.create_future()

        def resolve(payload):
            if not future.done():
                future.set_result(payload)

        def reject(error):
            if not future.done():
                future.set_exception(error)

        deliver, fail, events = self._item_callbacks(
            session, request_id, loop, resolve, reject)
        item = WorkItem(req, deliver, fail, events=events)

        def cancel_fn():
            item.abandon()
            reject(RequestError("cancelled by client", code="cancelled"))

        session.inflight[request_id] = (item, cancel_fn)
        try:
            self.registry.lane(schema.request_scope(req)).submit(item)
            timeout = req.get("timeout") or self.request_timeout
            payload = await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            item.abandon()
            self.bump("serve.timeouts")
            await self._err(session, request_id,
                            "request timed out after {}s".format(timeout),
                            code="timeout")
            return
        except asyncio.CancelledError:
            item.abandon()
            raise
        except RequestError as error:
            await self._err(session, request_id, error, code=error.code)
            return
        except Exception as error:
            await self._err(session, request_id, error,
                            code=getattr(error, "code", "error"))
            return
        finally:
            session.inflight.pop(request_id, None)
        self.bump("serve.responses")
        await self._write(session, protocol.encode_serve_ok(
            request_id, payload))

    # -- jobs: submit / poll / fetch / cancel ------------------------------

    async def _handle_submit(self, session, request_id, req):
        if len(session.inflight) >= self.max_inflight:
            self.bump("serve.quota_rejections")
            await self._err(session, request_id,
                            "client quota exhausted", code="quota")
            return
        loop = asyncio.get_running_loop()
        job_id = "J{}".format(next(self._job_seq))
        job = {"id": job_id, "state": "pending", "result": None,
               "error": None, "code": None, "item": None}

        def resolve(payload):
            if job["state"] == "pending":
                job["state"] = "done"
                job["result"] = payload

        def reject(error):
            if job["state"] == "pending":
                job["state"] = "error"
                job["error"] = str(error)
                job["code"] = getattr(error, "code", "error")

        deliver, fail, events = self._item_callbacks(
            session, request_id, loop, resolve, reject)
        run_req = dict(req, op="explore")
        item = WorkItem(run_req, deliver, fail, events=events)
        job["item"] = item
        self.jobs[job_id] = job
        self.bump("serve.jobs")
        self.registry.lane(schema.request_scope(run_req)).submit(item)
        await self._write(session, protocol.encode_serve_ok(
            request_id, {"job": job_id, "state": "pending"}))

    async def _handle_poll(self, session, request_id, req):
        job = self.jobs.get(req["job"])
        if job is None:
            await self._err(session, request_id,
                            "unknown job {!r}".format(req["job"]),
                            code="unknown-job")
            return
        await self._write(session, protocol.encode_serve_ok(
            request_id, {"job": job["id"], "state": job["state"]}))

    async def _handle_fetch(self, session, request_id, req):
        job = self.jobs.get(req["job"])
        if job is None:
            await self._err(session, request_id,
                            "unknown job {!r}".format(req["job"]),
                            code="unknown-job")
            return
        state = job["state"]
        if state == "done":
            self.bump("serve.responses")
            await self._write(session, protocol.encode_serve_ok(
                request_id, job["result"]))
        elif state == "error":
            await self._err(session, request_id, job["error"],
                            code=job["code"] or "error")
        elif state == "cancelled":
            await self._err(session, request_id,
                            "job {} was cancelled".format(job["id"]),
                            code="cancelled")
        else:
            await self._err(session, request_id,
                            "job {} is still {}".format(job["id"], state),
                            code="pending")

    async def _handle_cancel(self, session, request_id, req):
        if req["job"] is not None:
            job = self.jobs.get(req["job"])
            if job is None:
                await self._err(session, request_id,
                                "unknown job {!r}".format(req["job"]),
                                code="unknown-job")
                return
            cancelled = False
            if job["state"] == "pending":
                job["item"].abandon()
                job["state"] = "cancelled"
                cancelled = True
                self.bump("serve.cancelled")
            await self._write(session, protocol.encode_serve_ok(
                request_id,
                {"job": job["id"], "cancelled": cancelled,
                 "state": job["state"]}))
            return
        entry = session.inflight.get(req["request"])
        if entry is None:
            await self._err(session, request_id,
                            "no in-flight request {}".format(
                                req["request"]),
                            code="unknown-request")
            return
        __, cancel_fn = entry
        cancel_fn()
        self.bump("serve.cancelled")
        await self._write(session, protocol.encode_serve_ok(
            request_id, {"request": req["request"], "cancelled": True}))

    def _status(self):
        with self._counter_lock:
            counters = dict(self.counters)
        return {
            "counters": counters,
            "scopes": self.registry.scopes(),
            "jobs": {jid: job["state"] for jid, job in self.jobs.items()},
            "sessions": len(self._sessions),
            "max_inflight": self.max_inflight,
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self):
        """Bind the listening socket (records the effective port)."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started.set()
        return self.port

    async def serve_forever(self, announce=False):
        """Start listening and block until the server is stopped."""
        await self.start()
        if announce:
            print("repro serve listening on {}".format(self.address),
                  flush=True)
        async with self._server:
            await self._server.serve_forever()

    def run_blocking(self, announce=True):
        """Bind, announce and serve on the calling thread (CLI path)."""
        try:
            asyncio.run(self.serve_forever(announce=announce))
        except KeyboardInterrupt:
            pass
        finally:
            self.registry.close()

    @property
    def address(self):
        """``host:port`` once bound (the :class:`ServiceClient` target)."""
        return "{}:{}".format(self.host, self.port)

    def start_in_thread(self):
        """Run the server on a daemon thread; returns the bound port."""
        if self._thread is not None:
            return self.port

        def run():
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.serve_forever())
            except asyncio.CancelledError:
                pass
            finally:
                try:
                    loop.run_until_complete(loop.shutdown_asyncgens())
                finally:
                    loop.close()

        self._thread = threading.Thread(target=run, name="repro-serve",
                                        daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("explore server failed to start")
        return self.port

    def stop(self):
        """Stop a threaded server, drain the lanes, release the pool.

        Idempotent and safe to call concurrently (a test teardown can
        race an ``atexit`` path): the loop is cancelled once, lanes
        drain their queued work, and the worker-pool teardown is the
        ordering-safe :func:`repro.core.pool.shutdown_pools`.
        """
        with self._stop_lock:
            thread, loop = self._thread, self._loop
            self._thread = None
            self._loop = None
        if thread is not None and loop is not None:
            def cancel():
                for task in asyncio.all_tasks(loop):
                    task.cancel()

            try:
                loop.call_soon_threadsafe(cancel)
            except RuntimeError:
                pass               # loop already closed
            thread.join(timeout=10.0)
        self.registry.close()
        from ..core.pool import shutdown_pools

        shutdown_pools()


def main(argv=None):
    """``repro serve`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the exploration service daemon.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help="TCP port (0 picks a free one; default {})"
                        .format(DEFAULT_PORT))
    parser.add_argument("--max-inflight", type=int,
                        default=DEFAULT_MAX_INFLIGHT,
                        help="per-connection in-flight request quota "
                        "(default {})".format(DEFAULT_MAX_INFLIGHT))
    parser.add_argument("--timeout", type=float, default=None,
                        help="server-side per-request timeout in "
                        "seconds (default: none)")
    args = parser.parse_args(argv)
    server = ExploreServer(host=args.host, port=args.port,
                           max_inflight=args.max_inflight,
                           request_timeout=args.timeout)
    server.run_blocking()
    return 0
