"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``workloads``
    List the bundled benchmarks.
``engines``
    List the registered exploration engines (valid ``--engine`` names).
``explore``
    Run the full design flow for one workload on one machine and print
    the report plus the selected ISEs.
``table``
    Print Table 5.1.1 (the hardware implementation-option database).
``selftest``
    Run every bundled workload at -O0/-O3 against its reference.
``dot``
    Emit Graphviz DOT of a workload's hottest block with its explored
    ISEs highlighted.
``gantt``
    Print the before/after issue bundles of the hottest block.
``metrics``
    Summarise a JSON-lines observability trace written via ``--trace``.
``sweep``
    Run a (workload × machine × budget) design-space sweep — the whole
    grid, one deterministic shard of it (``--shard i/n``), or a merge
    of shard part files (``--merge part0.json part1.json …``).
``cache-server``
    Run the remote evalcache server that sweep shards share via
    ``REPRO_REMOTE_CACHE=host:port``.
``serve``
    Run the exploration service daemon: concurrent clients share one
    process's warm pool, per-scope batching and exploration memo (see
    docs/SERVICE.md; talk to it with ``repro.api.ServiceClient``).

``explore`` and ``selftest`` accept ``--trace PATH`` (stream a JSON-lines
event trace), ``--metrics`` (print the counters/timers registry after the
run) and ``--progress`` (human one-liners on stderr while exploring).
"""

import argparse
import sys

from . import api
from .config import ExplorationParams, ISEConstraints
from .core.flow import ISEDesignFlow
from .eval.reporting import render_table_5_1_1
from .graph.export import dfg_to_dot
from .hwlib import DEFAULT_DATABASE
from .obs import (
    JsonlSink,
    Observer,
    ProgressSink,
    load_trace,
    render_summary,
    summarize_trace,
)
from .sched.machine import MachineConfig
from .workloads import all_workloads, get_workload


def _add_machine_args(parser):
    parser.add_argument("--issue", type=int, default=2,
                        help="issue width (default 2)")
    parser.add_argument("--ports", default="4/2",
                        help="register file read/write ports (default 4/2)")


def _add_effort_args(parser):
    parser.add_argument("--iterations", type=int, default=120,
                        help="ACO iterations per round (default 120)")
    parser.add_argument("--restarts", type=int, default=2,
                        help="independent restarts per block (default 2)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", default=None, metavar="N",
                        help="worker processes for exploration: an "
                             "integer, or 'auto' for one per CPU "
                             "(default: $REPRO_JOBS or serial); results "
                             "are identical at any setting; workers "
                             "persist in a shared-memory pool across "
                             "explorations (REPRO_POOL_PERSIST=0 "
                             "disables reuse)")
    parser.add_argument("--batch", default=None, metavar="B",
                        help="ants advanced in lockstep per ACO "
                             "iteration batch (default: $REPRO_ANT_BATCH "
                             "or 16); 1 selects the scalar reference "
                             "loop, larger batches are faster but draw "
                             "a different RNG stream")
    parser.add_argument("--engine", default="aco", metavar="NAME",
                        help="exploration engine (default aco, the "
                             "paper's algorithm; see 'repro engines' "
                             "for the registry)")


def _add_obs_args(parser):
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a JSON-lines observability trace "
                             "(summarise with 'repro metrics PATH')")
    parser.add_argument("--metrics", action="store_true",
                        help="print the counters/timers registry after "
                             "the run")
    parser.add_argument("--progress", action="store_true",
                        help="stream human-readable progress to stderr")


def _observer_from_args(args):
    """An :class:`Observer` for the requested flags, or ``None``."""
    sinks = []
    if getattr(args, "trace", None):
        sinks.append(JsonlSink(args.trace))
    if getattr(args, "progress", False):
        sinks.append(ProgressSink())
    if sinks or getattr(args, "metrics", False):
        return Observer(sinks=sinks)
    return None


def _finish_observer(args, observer):
    if observer is None:
        return
    observer.close()
    if getattr(args, "metrics", False):
        print(observer.metrics.render())


def _flow_from_args(args):
    machine = MachineConfig(args.issue, args.ports)
    params = ExplorationParams(max_iterations=args.iterations,
                               restarts=args.restarts)
    return ISEDesignFlow(machine, params=params, seed=args.seed,
                         jobs=getattr(args, "jobs", None),
                         batch=getattr(args, "batch", None),
                         engine=getattr(args, "engine", "aco"))


def _cmd_workloads(args):
    del args
    for workload in all_workloads():
        print("{:10s} {}".format(workload.name, workload.description))
    return 0


def _cmd_table(args):
    del args
    print(render_table_5_1_1(DEFAULT_DATABASE))
    return 0


def _cmd_engines(args):
    del args
    for name, description in api.list_engines():
        print("{:10s} {}".format(name, description))
    return 0


def _cmd_explore(args):
    observer = _observer_from_args(args)
    try:
        result = api.explore(
            args.workload, issue=args.issue, ports=args.ports,
            profile=None, iterations=args.iterations,
            restarts=args.restarts, jobs=args.jobs, batch=args.batch,
            seed=args.seed, opt=args.opt, observer=observer,
            engine=args.engine)
        selection = api.evaluate(result, max_area=args.area,
                                 max_ises=args.max_ises,
                                 observer=observer)
        print("workload : {} ({})".format(result.workload, args.opt))
        print("machine  : {}-issue, RF {}".format(args.issue, args.ports))
        print("engine   : {}".format(result.engine))
        print("baseline : {} cycles".format(selection.baseline_cycles))
        print("with ISE : {} cycles".format(selection.final_cycles))
        print("reduction: {:.2%}".format(selection.reduction))
        print("selected : {} ISE(s), {:.0f} um2".format(
            selection.num_ises, selection.area))
        for description in selection.ises:
            print("  " + description)
    finally:
        _finish_observer(args, observer)
    return 0


def _cmd_selftest(args):
    """Run every bundled workload at -O0 and -O3 against its reference."""
    from .ir.interp import run_program
    from .ir.passes import optimize
    from .workloads import all_workloads, extra_workloads

    observer = _observer_from_args(args)
    failures = 0
    try:
        for workload in all_workloads() + extra_workloads():
            program, run_args = workload.build()
            expected = workload.reference()
            for level in ("O0", "O3"):
                candidate = optimize(program, level) if level != "O0" \
                    else program
                result, __, ___ = run_program(candidate, args=run_args)
                ok = result == expected
                failures += 0 if ok else 1
                if observer:
                    observer.event("selftest", workload=workload.name,
                                   level=level, ok=ok)
                    observer.count("selftest.checks")
                    if not ok:
                        observer.count("selftest.failures")
                print("{:10s} {}: {}".format(
                    workload.name, level, "ok" if ok else
                    "FAIL ({:#x} != {:#x})".format(result, expected)))
        if getattr(args, "engine", None):
            # Exploration smoke: the named engine must run end-to-end
            # on one small workload and return a coherent result.
            result = api.explore("crc32", profile=None, iterations=10,
                                 restarts=1, seed=0, observer=observer,
                                 engine=args.engine)
            ok = (result.engine == args.engine
                  and result.baseline_cycles > 0)
            failures += 0 if ok else 1
            print("{:10s} engine={}: {}".format(
                "explore", args.engine,
                "ok ({} candidates)".format(result.num_candidates)
                if ok else "FAIL"))
        if observer:
            observer.gauge("selftest.failures_total", failures)
    finally:
        _finish_observer(args, observer)
    print("selftest: {}".format("all ok" if failures == 0
                                else "{} failure(s)".format(failures)))
    return 0 if failures == 0 else 1


def _cmd_gantt(args):
    from .core.replacement import replace_and_schedule
    from .core.merging import merge_candidates
    from .graph.export import schedule_to_gantt

    workload = get_workload(args.workload)
    program, run_args = workload.build()
    flow = _flow_from_args(args)
    explored = flow.explore_application(program, args=run_args,
                                        opt_level=args.opt)
    hot = max((b for b in explored.blocks if b.explorable),
              key=lambda b: b.weight, default=None)
    if hot is None:
        print("no explorable block found", file=sys.stderr)
        return 1
    merged = merge_candidates(explored.candidates)
    baseline, __ = replace_and_schedule(
        hot.dfg, [], flow.machine, flow.technology, flow.constraints)
    schedule, ___ = replace_and_schedule(
        hot.dfg, merged, flow.machine, flow.technology, flow.constraints)
    print("hot block {}:{} — {} ops".format(
        hot.function, hot.label, len(hot.dfg)))
    print("baseline: {} cycles | with ISEs: {} cycles".format(
        baseline.makespan, schedule.makespan))
    print(schedule_to_gantt(schedule))
    return 0


def _cmd_manual(args):
    """Print the custom-instruction datasheet for one workload."""
    from .core.manual import render_manual

    workload = get_workload(args.workload)
    program, run_args = workload.build()
    flow = _flow_from_args(args)
    explored = flow.explore_application(program, args=run_args,
                                        opt_level=args.opt)
    constraints = ISEConstraints(max_area=args.area,
                                 max_ises=args.max_ises)
    report = flow.evaluate(explored, constraints)
    print(render_manual(
        report.selection,
        title="Custom instructions for {} on {}-issue RF {}".format(
            workload.name, args.issue, args.ports)))
    return 0


def _cmd_metrics(args):
    """Summarise a JSON-lines observability trace."""
    records = load_trace(args.trace)
    print(render_summary(summarize_trace(records)))
    return 0


def _parse_machines(text):
    """``"2:4/2,3:8/4"`` (issue:ports pairs) → ``((ports, issue), ...)``."""
    from .errors import ReproError

    if text.strip().lower() == "paper":
        from .sched.machine import PAPER_CASES

        return PAPER_CASES
    machines = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        try:
            issue_text, ports = item.split(":", 1)
            machines.append((ports.strip(), int(issue_text)))
        except ValueError:
            raise ReproError(
                "machine must look like ISSUE:PORTS (e.g. 2:4/2), got "
                "{!r}".format(item)) from None
    if not machines:
        raise ReproError("--machines needs at least one ISSUE:PORTS pair")
    return tuple(machines)


def _cmd_sweep(args):
    from .dist.sweep import (
        SweepResult,
        merge_sweeps,
        parse_shard,
        render_sweep,
    )
    from .eval.persistence import load_json, save_json

    if args.merge:
        parts = [SweepResult.from_payload(load_json(path))
                 for path in args.merge]
        result = merge_sweeps(parts)
        print(render_sweep(result))
    else:
        observer = _observer_from_args(args)
        try:
            result = api.sweep(
                [w.strip() for w in args.workloads.split(",") if w.strip()],
                machines=_parse_machines(args.machines),
                budgets=tuple(float(b) for b in args.budgets.split(",")),
                opt=args.opt, profile=args.profile, seed=args.seed,
                engine=args.engine, jobs=args.jobs, batch=args.batch,
                iterations=args.iterations, restarts=args.restarts,
                shard=parse_shard(args.shard) if args.shard else None,
                observer=observer)
        finally:
            _finish_observer(args, observer)
        if result.shard_index is None:
            print(render_sweep(result))
        else:
            print("shard {}/{}: {} row(s) over {} cell(s)".format(
                result.shard_index, result.shard_count,
                len(result.rows), len(result.cells)))
    print("digest   : {}".format(result.digest))
    if args.out:
        save_json(args.out, result.to_payload())
        print("written  : {}".format(args.out))
    return 0


def _cmd_cache_server(args):
    from .dist.server import EvalCacheServer

    server = EvalCacheServer(host=args.host, port=args.port,
                             max_entries=args.max_entries,
                             max_bytes=args.max_bytes)
    server.run_blocking()
    return 0


def _cmd_serve(args):
    from .serve.server import ExploreServer

    server = ExploreServer(host=args.host, port=args.port,
                           max_inflight=args.max_inflight,
                           request_timeout=args.timeout)
    server.run_blocking()
    return 0


def _cmd_dot(args):
    workload = get_workload(args.workload)
    program, run_args = workload.build()
    flow = _flow_from_args(args)
    explored = flow.explore_application(program, args=run_args,
                                        opt_level=args.opt)
    hot = max((b for b in explored.blocks if b.explorable),
              key=lambda b: b.weight, default=None)
    if hot is None:
        print("no explorable block found", file=sys.stderr)
        return 1
    members = [c.members for c in explored.candidates
               if c.members <= set(hot.dfg.nodes)]
    print(dfg_to_dot(hot.dfg, highlight=members))
    return 0


def build_parser():
    """Construct the argparse parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ISE exploration for multiple-issue architectures "
                    "(DATE 2008 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list bundled benchmarks") \
        .set_defaults(func=_cmd_workloads)
    sub.add_parser("table", help="print Table 5.1.1") \
        .set_defaults(func=_cmd_table)
    selftest = sub.add_parser(
        "selftest",
        help="check every workload against its reference at O0/O3")
    selftest.add_argument("--engine", default=None, metavar="NAME",
                          help="additionally smoke-test this "
                               "exploration engine on crc32")
    _add_obs_args(selftest)
    selftest.set_defaults(func=_cmd_selftest)

    sub.add_parser(
        "engines",
        help="list registered exploration engines (--engine names)") \
        .set_defaults(func=_cmd_engines)

    explore = sub.add_parser("explore", help="run the design flow")
    explore.add_argument("workload")
    explore.add_argument("--opt", choices=("O0", "O3"), default="O3")
    explore.add_argument("--area", type=float, default=None,
                         help="silicon area budget in um2")
    explore.add_argument("--max-ises", type=int, default=None,
                         help="ISE count budget (unused opcodes)")
    _add_machine_args(explore)
    _add_effort_args(explore)
    _add_obs_args(explore)
    explore.set_defaults(func=_cmd_explore)

    metrics = sub.add_parser(
        "metrics", help="summarise a JSON-lines observability trace")
    metrics.add_argument("trace", help="trace file written via --trace")
    metrics.set_defaults(func=_cmd_metrics)

    sweep = sub.add_parser(
        "sweep",
        help="design-space sweep (full grid, one shard, or a merge)")
    sweep.add_argument("--workloads", default="adpcm,jpeg",
                       help="comma-separated workload names "
                            "(default adpcm,jpeg)")
    sweep.add_argument("--machines", default="paper", metavar="SPEC",
                       help="comma-separated ISSUE:PORTS pairs (e.g. "
                            "2:4/2,3:8/4), or 'paper' for the §5.1 "
                            "cases (default)")
    sweep.add_argument("--budgets", default="20000,80000,320000",
                       help="comma-separated area budgets in um2 "
                            "(default 20000,80000,320000)")
    sweep.add_argument("--opt", choices=("O0", "O3"), default="O3")
    sweep.add_argument("--profile", default="quick",
                       choices=("quick", "normal", "full"),
                       help="effort profile (default quick)")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--jobs", default=None, metavar="N",
                       help="worker processes per exploration "
                            "(default: $REPRO_JOBS or serial)")
    sweep.add_argument("--batch", default=None, metavar="B",
                       help="ants per ACO lockstep batch "
                            "(default: $REPRO_ANT_BATCH or 16)")
    sweep.add_argument("--engine", default="aco", metavar="NAME",
                       help="exploration engine (default aco)")
    sweep.add_argument("--iterations", type=int, default=None,
                       help="override the profile's ACO iterations")
    sweep.add_argument("--restarts", type=int, default=None,
                       help="override the profile's restarts per block")
    sweep.add_argument("--shard", default=None, metavar="I/N",
                       help="run only the cells hashing onto shard I "
                            "of N (deterministic partition)")
    sweep.add_argument("--out", default=None, metavar="PATH",
                       help="write the result payload as JSON (the "
                            "input format of --merge)")
    sweep.add_argument("--merge", nargs="+", default=None,
                       metavar="PART",
                       help="merge shard part files written via --out "
                            "instead of running the sweep")
    _add_obs_args(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    cache_server = sub.add_parser(
        "cache-server",
        help="run the remote evalcache server (REPRO_REMOTE_CACHE)")
    from .dist.server import (
        DEFAULT_MAX_BYTES,
        DEFAULT_MAX_ENTRIES,
        DEFAULT_PORT,
    )

    cache_server.add_argument("--host", default="127.0.0.1")
    cache_server.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help="TCP port (0 picks a free one; default {})".format(
            DEFAULT_PORT))
    cache_server.add_argument(
        "--max-entries", type=int, default=DEFAULT_MAX_ENTRIES,
        help="LRU entry bound (default {})".format(DEFAULT_MAX_ENTRIES))
    cache_server.add_argument(
        "--max-bytes", type=int, default=DEFAULT_MAX_BYTES,
        help="LRU byte bound over values (default {})".format(
            DEFAULT_MAX_BYTES))
    cache_server.set_defaults(func=_cmd_cache_server)

    serve = sub.add_parser(
        "serve",
        help="run the exploration service daemon (see docs/SERVICE.md)")
    from .serve.server import (
        DEFAULT_MAX_INFLIGHT,
        DEFAULT_PORT as SERVE_DEFAULT_PORT,
    )

    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=SERVE_DEFAULT_PORT,
        help="TCP port (0 picks a free one; default {})".format(
            SERVE_DEFAULT_PORT))
    serve.add_argument(
        "--max-inflight", type=int, default=DEFAULT_MAX_INFLIGHT,
        help="per-connection in-flight request quota (default "
             "{})".format(DEFAULT_MAX_INFLIGHT))
    serve.add_argument(
        "--timeout", type=float, default=None,
        help="server-side per-request timeout in seconds "
             "(default: none)")
    serve.set_defaults(func=_cmd_serve)

    dot = sub.add_parser("dot", help="DOT of the hottest block + ISEs")
    dot.add_argument("workload")
    dot.add_argument("--opt", choices=("O0", "O3"), default="O3")
    _add_machine_args(dot)
    _add_effort_args(dot)
    dot.set_defaults(func=_cmd_dot)

    gantt = sub.add_parser(
        "gantt", help="issue table of the hottest block with its ISEs")
    gantt.add_argument("workload")
    gantt.add_argument("--opt", choices=("O0", "O3"), default="O3")
    _add_machine_args(gantt)
    _add_effort_args(gantt)
    gantt.set_defaults(func=_cmd_gantt)

    manual = sub.add_parser(
        "manual", help="datasheet of the selected custom instructions")
    manual.add_argument("workload")
    manual.add_argument("--opt", choices=("O0", "O3"), default="O3")
    manual.add_argument("--area", type=float, default=None)
    manual.add_argument("--max-ises", type=int, default=None)
    _add_machine_args(manual)
    _add_effort_args(manual)
    manual.set_defaults(func=_cmd_manual)
    return parser


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    finally:
        # One-shot process: release the worker pool (and its shared
        # memory) deterministically instead of leaning on atexit.
        from .core.pool import shutdown_pools

        shutdown_pools()


if __name__ == "__main__":
    sys.exit(main())
