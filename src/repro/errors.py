"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one type to handle any library failure.  Subclasses are
grouped by subsystem so tests can assert on precise failure modes.
"""


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class ISAError(ReproError):
    """Problems with instruction definitions or operand usage."""


class UnknownOpcodeError(ISAError):
    """An opcode name does not exist in the PISA-like instruction set."""

    def __init__(self, name):
        super().__init__("unknown opcode: {!r}".format(name))
        self.name = name


class IRError(ReproError):
    """Malformed intermediate representation."""


class VerificationError(IRError):
    """An IR function failed structural verification."""


class InterpreterError(ReproError):
    """Runtime failure while interpreting an IR function."""


class TrapError(InterpreterError):
    """The interpreted program performed an illegal action (e.g. division
    by zero or an out-of-bounds memory access)."""


class StepLimitExceeded(InterpreterError):
    """The interpreter executed more steps than its configured budget."""


class SchedulingError(ReproError):
    """The list scheduler could not produce a legal schedule."""


class ExplorationError(ReproError):
    """The ISE exploration algorithm hit an unrecoverable state."""


class ConvergenceError(ExplorationError):
    """A round failed to converge within the iteration budget."""


class BudgetExhausted(ReproError):
    """An :class:`~repro.engines.base.EvalBudget` refused a further
    uncached candidate evaluation.

    Engines racing under a tournament budget catch this internally and
    return their best-so-far result; it only escapes an engine when the
    budget dies before even the block baseline could be evaluated."""


class ConstraintError(ReproError):
    """An ISE candidate violates a physical constraint."""


class ConfigError(ReproError):
    """Invalid parameter configuration."""
