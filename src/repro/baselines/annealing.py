"""Simulated-annealing ISE exploration.

§2.2 of the thesis argues for ant-colony optimisation over other
evolutionary models (simulated annealing, genetic) on mapping-ease
grounds.  This comparator makes that an experiment: the same solution
space — one implementation option per operation, hardware components
becoming ISEs — searched by classic simulated annealing over option
flips, evaluated with the same deterministic list scheduler.

Energy is lexicographic (makespan first, area as a tiny tie-break), and
the per-move evaluation legalises the flipped state's hardware
components exactly like the ACO explorer's round output, so both
algorithms answer to the same constraints.
"""

import math
import random

from ..config import DEFAULT_CONSTRAINTS, DEFAULT_PARAMS
from ..core.candidate import ISECandidate
from ..core.exploration import ExplorationResult
from ..core.make_convex import legalize_components
from ..hwlib.database import DEFAULT_DATABASE
from ..hwlib.options import default_io_table
from ..hwlib.technology import DEFAULT_TECHNOLOGY
from ..sched.list_scheduler import list_schedule
from ..sched.units import contract_dfg


class AnnealingExplorer:
    """Option-flip simulated annealing over one basic block."""

    def __init__(self, machine, constraints=None, database=None,
                 technology=None, seed=0, steps=400,
                 initial_temperature=2.0, cooling=0.99):
        self.machine = machine
        constraints = constraints or DEFAULT_CONSTRAINTS
        rf = machine.register_file
        self.constraints = constraints.with_(
            n_in=min(constraints.n_in, rf.read_ports),
            n_out=min(constraints.n_out, rf.write_ports))
        self.database = database or DEFAULT_DATABASE
        self.technology = technology or DEFAULT_TECHNOLOGY
        self.seed = seed
        self.steps = int(steps)
        self.initial_temperature = float(initial_temperature)
        self.cooling = float(cooling)

    def explore(self, dfg, io_tables=None):
        """Anneal over option flips; returns an ExplorationResult."""
        if io_tables is None:
            io_tables = {uid: default_io_table(dfg.op(uid), self.database)
                         for uid in dfg.nodes}
        rng = random.Random("{}:{}:{}".format(self.seed, dfg.function,
                                              dfg.label))
        flippable = [uid for uid in dfg.nodes
                     if len(tuple(io_tables[uid])) > 1]
        state = {uid: tuple(io_tables[uid])[0] for uid in dfg.nodes}
        base_cycles, __ = self._energy(dfg, state, io_tables)
        best_state = dict(state)
        best_energy = (base_cycles, 0.0)
        current_energy = best_energy
        temperature = self.initial_temperature
        iterations = 0
        for __ in range(self.steps):
            if not flippable:
                break
            iterations += 1
            uid = rng.choice(flippable)
            options = tuple(io_tables[uid])
            new_option = rng.choice(
                [o for o in options if o is not state[uid]])
            old_option = state[uid]
            state[uid] = new_option
            energy = self._energy(dfg, state, io_tables)
            delta = ((energy[0] - current_energy[0])
                     + (energy[1] - current_energy[1]) / 1e7)
            if delta <= 0 or rng.random() < math.exp(
                    -delta / max(temperature, 1e-9)):
                current_energy = energy
                if energy < best_energy:
                    best_energy = energy
                    best_state = dict(state)
            else:
                state[uid] = old_option
            temperature *= self.cooling
        candidates = self._extract(dfg, best_state)
        final = best_energy[0]
        for candidate in candidates:
            candidate.source = "SA"
        return ExplorationResult(dfg, candidates, base_cycles, final,
                                 rounds=1, iterations=iterations)

    # -- internals -----------------------------------------------------------

    def _groups(self, dfg, state):
        chosen_hw = {uid for uid, option in state.items()
                     if option.is_hardware}
        groups = []
        for members in legalize_components(dfg, chosen_hw,
                                           self.constraints):
            groups.append((members,
                           {uid: state[uid] for uid in members}))
        return groups

    def _energy(self, dfg, state, io_tables):
        groups = self._groups(dfg, state)
        software_cycles = {uid: io_tables[uid].software[0].cycles
                           for uid in dfg.nodes}
        graph, units = contract_dfg(dfg, groups, self.technology,
                                    software_cycles=software_cycles)
        schedule = list_schedule(graph, units, self.machine)
        area = sum(unit.area for unit in units.values())
        return (schedule.makespan, area)

    def _extract(self, dfg, state):
        return [ISECandidate(dfg, members, option_of, self.technology,
                             source="SA")
                for members, option_of in self._groups(dfg, state)]


def annealing_explorer_factory(flow):
    """``explorer_factory`` adapter for the design flow."""
    return AnnealingExplorer(
        flow.machine, constraints=flow.constraints,
        technology=flow.technology, seed=flow.seed)
