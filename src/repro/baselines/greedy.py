"""Greedy cone-growing ISE exploration (Clark-style [6]).

A deterministic baseline: grow a candidate from every groupable seed by
repeatedly absorbing the neighbouring operation that keeps the group
legal and maximises collapsed-chain cycles per unit area; keep the
single candidate whose fixing improves the block's list schedule the
most; repeat round-wise until no candidate helps.  Used in ablations
and as a sanity bound in tests (the ACO explorer should not lose to it
by much).
"""

import networkx as nx

from ..config import DEFAULT_CONSTRAINTS
from ..graph.analysis import is_legal
from ..hwlib.database import DEFAULT_DATABASE
from ..hwlib.technology import DEFAULT_TECHNOLOGY
from ..sched.list_scheduler import list_schedule
from ..sched.units import contract_dfg
from ..core.candidate import ISECandidate
from ..core.exploration import ExplorationResult


class GreedyExplorer:
    """Deterministic greedy cone growth."""

    def __init__(self, machine, constraints=None, database=None,
                 technology=None, max_size=8, seed=0):
        self.machine = machine
        constraints = constraints or DEFAULT_CONSTRAINTS
        rf = machine.register_file
        self.constraints = constraints.with_(
            n_in=min(constraints.n_in, rf.read_ports),
            n_out=min(constraints.n_out, rf.write_ports))
        self.database = database or DEFAULT_DATABASE
        self.technology = technology or DEFAULT_TECHNOLOGY
        self.max_size = max_size
        self.seed = seed     # unused; kept for interface parity

    def explore(self, dfg):
        """Round-wise greedy cone growth; returns an ExplorationResult."""
        base = self._evaluate(dfg, [])
        candidates = []
        best_cycles = base
        rounds = 0
        while rounds < 16:
            rounds += 1
            taken = set().union(*(c.members for c in candidates)) \
                if candidates else set()
            proposal = self._best_candidate(dfg, taken)
            if proposal is None:
                break
            trial = candidates + [proposal]
            cycles = self._evaluate(dfg, trial)
            if cycles >= best_cycles:
                break
            proposal.cycle_saving = best_cycles - cycles
            proposal.source = "GREEDY"
            candidates.append(proposal)
            best_cycles = cycles
        return ExplorationResult(dfg, candidates, base, best_cycles,
                                 rounds, rounds)

    # -- internals ---------------------------------------------------------

    def _best_candidate(self, dfg, taken):
        best = None
        best_score = 0.0
        for seed in dfg.groupable_nodes():
            if seed in taken:
                continue
            members = self._grow(dfg, seed, taken)
            if len(members) < 2:
                continue
            candidate = self._realize(dfg, members)
            score = self._score(dfg, members, candidate)
            if score > best_score:
                best, best_score = candidate, score
        return best

    def _grow(self, dfg, seed, taken):
        members = {seed}
        while len(members) < self.max_size:
            best_next, best_gain = None, 0.0
            for node in _fringe(dfg, members):
                if node in taken or not dfg.op(node).groupable:
                    continue
                trial = members | {node}
                if not is_legal(dfg, trial, self.constraints):
                    continue
                gain = (_chain(dfg, trial) - _chain(dfg, members))
                # Prefer chain-lengthening absorptions; allow width-only
                # growth at low priority.
                gain = gain + 0.1
                if gain > best_gain:
                    best_next, best_gain = node, gain
            if best_next is None:
                break
            members.add(best_next)
        if not is_legal(dfg, members, self.constraints):
            return {seed}
        return members

    def _realize(self, dfg, members):
        option_of = {}
        for uid in members:
            options = self.database.hardware_options(dfg.op(uid).name)
            option_of[uid] = min(options, key=lambda o: o.delay_ns)
        return ISECandidate(dfg, members, option_of, self.technology,
                            source="GREEDY")

    def _score(self, dfg, members, candidate):
        saving = _chain(dfg, members) - candidate.cycles
        if saving <= 0:
            return 0.0
        return saving + 1.0 / (1.0 + candidate.area)

    def _evaluate(self, dfg, candidates):
        groups = [(c.members, c.option_of) for c in candidates]
        graph, units = contract_dfg(dfg, groups, self.technology)
        return list_schedule(graph, units, self.machine).makespan


def _fringe(dfg, members):
    fringe = set()
    for uid in members:
        fringe.update(dfg.predecessors(uid))
        fringe.update(dfg.successors(uid))
    return fringe - set(members)


def _chain(dfg, members):
    longest = {}
    for uid in nx.topological_sort(dfg.graph.subgraph(members)):
        arrival = 0
        for pred in dfg.predecessors(uid):
            if pred in members:
                arrival = max(arrival, longest[pred])
        longest[uid] = arrival + 1
    return max(longest.values()) if longest else 0


def greedy_explorer_factory(flow):
    """``explorer_factory`` adapter for the design flow."""
    return GreedyExplorer(
        flow.machine, constraints=flow.constraints,
        technology=flow.technology, seed=flow.seed)
