"""Exhaustive ISE exploration for small DFGs (Pozzi-style oracle [4]).

Enumerates every connected, legal (convex, port-bounded, memory-free)
subset of groupable operations, realises each with the fastest hardware
options, and — round-wise, like the other explorers — fixes the subset
whose contraction minimises the block's list schedule.  Worst-case
exponential; guarded by a node-count limit so tests can use it as an
optimality oracle against the heuristics.
"""

from itertools import combinations

from ..config import DEFAULT_CONSTRAINTS
from ..errors import ExplorationError
from ..graph.analysis import is_legal
from ..hwlib.database import DEFAULT_DATABASE
from ..hwlib.technology import DEFAULT_TECHNOLOGY
from ..sched.list_scheduler import list_schedule
from ..sched.units import contract_dfg
from ..core.candidate import ISECandidate
from ..core.exploration import ExplorationResult

#: Refuse DFGs larger than this (2^N subsets).
MAX_EXACT_NODES = 16


class ExactExplorer:
    """Optimal (per-round) explorer for tiny DFGs."""

    def __init__(self, machine, constraints=None, database=None,
                 technology=None, seed=0, max_nodes=MAX_EXACT_NODES):
        self.machine = machine
        constraints = constraints or DEFAULT_CONSTRAINTS
        rf = machine.register_file
        self.constraints = constraints.with_(
            n_in=min(constraints.n_in, rf.read_ports),
            n_out=min(constraints.n_out, rf.write_ports))
        self.database = database or DEFAULT_DATABASE
        self.technology = technology or DEFAULT_TECHNOLOGY
        self.max_nodes = max_nodes
        self.seed = seed     # unused; interface parity

    def explore(self, dfg):
        """Exhaustive per-round optimum; returns an ExplorationResult."""
        groupable = dfg.groupable_nodes()
        if len(groupable) > self.max_nodes:
            raise ExplorationError(
                "exact exploration limited to {} groupable nodes, got {}"
                .format(self.max_nodes, len(groupable)))
        base = self._evaluate(dfg, [])
        candidates = []
        best_cycles = base
        rounds = 0
        while rounds < 8:
            rounds += 1
            taken = set().union(*(c.members for c in candidates)) \
                if candidates else set()
            best = None
            for members in self._legal_subsets(dfg, taken):
                candidate = self._realize(dfg, members)
                cycles = self._evaluate(dfg, candidates + [candidate])
                key = (cycles, candidate.area)
                if best is None or key < best[0]:
                    best = (key, candidate)
            if best is None or best[0][0] >= best_cycles:
                break
            candidate = best[1]
            candidate.cycle_saving = best_cycles - best[0][0]
            candidates.append(candidate)
            best_cycles = best[0][0]
        return ExplorationResult(dfg, candidates, base, best_cycles,
                                 rounds, rounds)

    # -- enumeration ---------------------------------------------------------

    def _legal_subsets(self, dfg, taken):
        pool = [uid for uid in dfg.groupable_nodes() if uid not in taken]
        for size in range(2, len(pool) + 1):
            for subset in combinations(pool, size):
                members = set(subset)
                if not _connected(dfg, members):
                    continue
                if is_legal(dfg, members, self.constraints):
                    yield members

    def _realize(self, dfg, members):
        option_of = {}
        for uid in members:
            options = self.database.hardware_options(dfg.op(uid).name)
            option_of[uid] = min(options, key=lambda o: o.delay_ns)
        return ISECandidate(dfg, members, option_of, self.technology,
                            source="EXACT")

    def _evaluate(self, dfg, candidates):
        groups = [(c.members, c.option_of) for c in candidates]
        graph, units = contract_dfg(dfg, groups, self.technology)
        return list_schedule(graph, units, self.machine).makespan


def _connected(dfg, members):
    members = set(members)
    seen = {next(iter(members))}
    frontier = list(seen)
    while frontier:
        node = frontier.pop()
        for other in list(dfg.predecessors(node)) + list(dfg.successors(node)):
            if other in members and other not in seen:
                seen.add(other)
                frontier.append(other)
    return seen == members
