"""The "SI" comparator: Wu et al.'s single-issue ACO exploration [8].

The previous work explores ISEs with the same ACO machinery but is
*location-unaware*: it considers only the legality of operations (I/O
ports, convexity, no memory ops), assumes a single-issue pipeline when
it measures execution time, and therefore happily packs operations that
a multi-issue schedule would have hidden off the critical path.

Reproduced here by running the shared exploration engine with

* a **1-issue** view of the target machine (same register file, same
  clock — the ISA-format constraints are identical), and
* the locality terms of the merit function disabled
  (``use_critical_path_boost = False``, ``use_slack_window = False``),

which is precisely the difference the thesis claims over [8].  The
returned candidates carry the *single-issue* cycle savings the
algorithm believes in; the design flow then evaluates them on the real
multi-issue machine — reproducing the "schedule the single-issue result
on a 2-issue processor" comparison of §1.4.
"""

from ..config import DEFAULT_PARAMS
from ..engines.aco import AcoEngine
from ..sched.machine import MachineConfig


class SingleIssueExplorer:
    """Legality-only ACO ISE exploration (the paper's baseline [8])."""

    def __init__(self, machine, params=None, constraints=None,
                 database=None, technology=None, seed=0):
        params = params or DEFAULT_PARAMS
        blind_params = params.with_(
            use_critical_path_boost=False,
            use_slack_window=False,
        )
        self.target_machine = machine
        single_issue = MachineConfig(
            1, machine.register_file,
            fu_counts={"alu": 1, "mul": 1, "mem": 1, "branch": 1, "asfu": 1},
            technology=machine.technology)
        self._inner = AcoEngine(
            single_issue, params=blind_params, constraints=constraints,
            database=database, technology=technology, seed=seed)

    @property
    def machine(self):
        """The machine the algorithm *believes* it schedules for."""
        return self._inner.machine

    @property
    def constraints(self):
        """The (clamped) physical constraints in effect."""
        return self._inner.constraints

    def explore(self, dfg, jobs=None):
        """Explore one DFG; candidates are tagged ``source="SI"``."""
        result = self._inner.explore(dfg, jobs=jobs)
        self._tag(result)
        return result

    def explore_many(self, dfgs, jobs=None, costs=None):
        """Explore several DFGs with (block, restart) pool granularity."""
        results = self._inner.explore_many(dfgs, jobs=jobs, costs=costs)
        for result in results:
            self._tag(result)
        return results

    @staticmethod
    def _tag(result):
        for candidate in result.candidates:
            candidate.source = "SI"


def si_explorer_factory(flow):
    """``explorer_factory`` adapter for
    :class:`~repro.core.flow.ISEDesignFlow`."""
    return SingleIssueExplorer(
        flow.machine, params=flow.params, constraints=flow.constraints,
        technology=flow.technology, seed=flow.seed)
