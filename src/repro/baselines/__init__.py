"""Comparator algorithms: SI (Wu [8]), greedy [6], exact oracle [4]."""

from .single_issue_aco import SingleIssueExplorer, si_explorer_factory
from .greedy import GreedyExplorer, greedy_explorer_factory
from .exact import ExactExplorer, MAX_EXACT_NODES
from .annealing import AnnealingExplorer, annealing_explorer_factory

__all__ = [
    "AnnealingExplorer",
    "ExactExplorer",
    "GreedyExplorer",
    "MAX_EXACT_NODES",
    "SingleIssueExplorer",
    "annealing_explorer_factory",
    "greedy_explorer_factory",
    "si_explorer_factory",
]
