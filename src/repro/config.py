"""Configuration objects for the ISE exploration algorithm.

:class:`ExplorationParams` carries every tunable named in chapter 4/5 of
the thesis.  The defaults reproduce the experimental setup of §5.1:

* initial merit 100 (software) / 200 (hardware), initial trail 0,
* ``P_END`` = 0.99,
* ``alpha`` = 0.25,
* evaporation factors ``rho1..rho5`` = 4, 2, 2, 2, 0.4,
* merit factors ``beta_cp`` = 0.9, ``beta_size`` = 0.7,
  ``beta_io`` = 0.8, ``beta_convex`` = 0.4.

The thesis does not print a value for ``lambda`` (the scheduling-priority
weight in Eq. 1); 0.1 keeps SP influential without drowning trail/merit,
and the ablation bench sweeps it.
"""

from dataclasses import dataclass, field, replace

from .errors import ConfigError


@dataclass(frozen=True)
class ExplorationParams:
    """Tunables of the multi-issue ACO ISE exploration algorithm.

    Attributes mirror the symbols of the thesis; see the module docstring
    for provenance of the default values.
    """

    # Relative influence of trail vs merit in Eq. 1 / Eq. 3.
    alpha: float = 0.25
    # Relative influence of scheduling priority (SP) in Eq. 1.
    lam: float = 0.1
    # Trail evaporation factors (Fig. 4.3.5).
    rho1: float = 4.0   # reward chosen options on improvement
    rho2: float = 2.0   # decay unchosen options on improvement
    rho3: float = 2.0   # punish chosen options on regression
    rho4: float = 2.0   # boost unchosen options on regression
    rho5: float = 0.4   # extra punishment for reordered operations
    # Merit factors (Fig. 4.3.7).
    beta_cp: float = 0.9      # critical-path boost divisor (case 1)
    beta_size: float = 0.7    # singleton damping (case 2)
    beta_io: float = 0.8      # I/O-constraint violation damping (case 3)
    beta_convex: float = 0.4  # convexity violation damping (case 3)
    # Convergence threshold on the selected probability sp.
    p_end: float = 0.99
    # Initial values.
    initial_merit_software: float = 100.0
    initial_merit_hardware: float = 200.0
    initial_trail: float = 0.0
    # Guard rails not stated in the thesis but required in practice.
    max_iterations: int = 400     # per-round iteration budget
    max_rounds: int = 16          # ISEs explored per basic block at most
    merit_floor: float = 1e-6     # merits never collapse below this
    merit_scale: float = 100.0    # per-option average after normalisation
    # Number of independent repetitions per basic block (§5.1 uses 5);
    # the best result is kept.
    restarts: int = 5
    # Ablation toggles (DESIGN.md experiments A2).
    use_critical_path_boost: bool = True
    use_slack_window: bool = True

    def __post_init__(self):
        if not 0.0 <= self.alpha <= 1.0:
            raise ConfigError("alpha must lie in [0, 1]")
        if self.lam < 0.0:
            raise ConfigError("lambda must be non-negative")
        if not 0.0 < self.p_end < 1.0:
            raise ConfigError("P_END must lie in (0, 1)")
        for name in ("rho1", "rho2", "rho3", "rho4", "rho5"):
            if getattr(self, name) < 0.0:
                raise ConfigError("{} must be non-negative".format(name))
        for name in ("beta_cp", "beta_size", "beta_io", "beta_convex"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ConfigError("{} must lie in (0, 1]".format(name))
        if self.max_iterations < 1 or self.max_rounds < 1:
            raise ConfigError("iteration/round budgets must be positive")
        if self.restarts < 1:
            raise ConfigError("restarts must be positive")

    def with_(self, **kwargs):
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ISEConstraints:
    """Physical constraints of §4.2 applied to every ISE candidate.

    ``n_in``/``n_out`` default to 4 read / 2 write register-file ports —
    the narrowest configuration evaluated in §5.1.  ``max_ises`` bounds
    the number of ISEs selected (unused-opcode budget); ``max_area`` is
    the total extra silicon area allowed for all ASFUs in µm².
    ``max_ise_cycles`` models the *pipestage timing* constraint the
    related work lists (§3.1): when set, an ISE's combinational path
    must fit that many clock cycles (1 = single-cycle ASFUs only);
    ``None`` allows multi-cycle ISEs, the thesis's evaluated setting.
    """

    n_in: int = 4
    n_out: int = 2
    max_ises: int = None
    max_area: float = None
    max_ise_cycles: int = None
    forbid_memory_ops: bool = True

    def __post_init__(self):
        if self.n_in < 1 or self.n_out < 1:
            raise ConfigError("register port limits must be positive")
        if self.max_ises is not None and self.max_ises < 0:
            raise ConfigError("max_ises must be non-negative")
        if self.max_area is not None and self.max_area < 0:
            raise ConfigError("max_area must be non-negative")
        if self.max_ise_cycles is not None and self.max_ise_cycles < 1:
            raise ConfigError("max_ise_cycles must be positive")

    def with_(self, **kwargs):
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


DEFAULT_PARAMS = ExplorationParams()
DEFAULT_CONSTRAINTS = ISEConstraints()
