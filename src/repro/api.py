"""The stable public API: one call in, one frozen result out.

External callers should not reach into :mod:`repro.core` — machine
construction, effort profiles, observability wiring and flow plumbing
are all internals that this facade pins down behind two keyword-only
functions:

* :func:`explore` — profile a workload, run the ACO ISE exploration,
  return a frozen :class:`ExploreResult`;
* :func:`evaluate` — select ISEs under a budget (reusing a prior
  :class:`ExploreResult`, or exploring from scratch when given a
  workload name), return a frozen :class:`SelectionResult`;
* :func:`sweep` — run a (workload × machine × budget) design-space
  grid, optionally one deterministic shard of it, returning a frozen
  :class:`~repro.dist.sweep.SweepResult` whose merged digest is
  bit-identical to a serial run.

Both accept ``trace=PATH`` to stream a JSON-lines observability trace
(read back with ``python -m repro metrics PATH``) and ``observer=`` for
a caller-owned :class:`~repro.obs.Observer`.

``jobs > 1`` fans work over the persistent shared-memory worker pool
(:mod:`repro.core.pool`); the pool survives across calls so repeated
explorations amortise its startup.  :func:`shutdown_pools` (re-exported
here) releases the workers and their shared-memory segments early —
an ``atexit`` hook and ``EvalContext.close()`` otherwise handle it.

Quickstart::

    from repro import explore, evaluate

    result = explore("crc32", issue=2, ports="4/2", seed=42)
    best = evaluate(result, max_area=80_000)
    print(best.reduction, best.ises)
"""

from dataclasses import dataclass, field

from . import engines
from .config import ExplorationParams, ISEConstraints
from .core.flow import ISEDesignFlow
from .core.pool import shutdown_pools  # re-export: public teardown  # noqa: F401
from .errors import ReproError
from .eval.runner import PROFILES
from .obs import NULL_OBSERVER, JsonlSink, Observer
from .sched.machine import PAPER_CASES, MachineConfig
from .serve.client import ServiceClient, ServiceError  # noqa: F401  (re-export)
from .workloads import get_workload


@dataclass(frozen=True)
class ExploreResult:
    """Frozen outcome of :func:`explore` (reusable across budgets)."""

    workload: str
    opt: str
    issue: int
    ports: str
    profile: str
    seed: int
    baseline_cycles: int
    candidates: tuple          # human-readable candidate descriptions
    engine: str = "aco"        # registry name of the engine that ran
    trace_path: str = None
    metrics: dict = field(default=None, compare=False, repr=False)
    # Engine handles, deliberately excluded from equality/repr: they
    # let evaluate() reuse the exploration without re-running ACO.
    explored: object = field(default=None, compare=False, repr=False)
    flow: object = field(default=None, compare=False, repr=False)

    @property
    def num_candidates(self):
        """Number of ISE candidates found in the hot blocks."""
        return len(self.candidates)


@dataclass(frozen=True)
class SelectionResult:
    """Frozen outcome of :func:`evaluate` (one budget point)."""

    workload: str
    opt: str
    issue: int
    ports: str
    max_area: float
    max_ises: int
    baseline_cycles: int
    final_cycles: int
    reduction: float
    num_ises: int
    area: float
    ises: tuple                # human-readable selected-ISE descriptions
    metrics: dict = field(default=None, compare=False, repr=False)
    report: object = field(default=None, compare=False, repr=False)


def _resolve_params(profile, iterations, restarts):
    """Exploration parameters + hot-block budget for an effort profile.

    ``profile=None`` means library defaults (the paper's §5.1 effort);
    named profiles come from :data:`repro.eval.runner.PROFILES`.
    Explicit ``iterations``/``restarts`` override either source.
    """
    if profile is None:
        params = ExplorationParams()
        max_blocks = None
    else:
        if profile not in PROFILES:
            raise ReproError(
                "unknown profile {!r}; choose from {}".format(
                    profile, sorted(PROFILES)))
        settings = PROFILES[profile]
        params = ExplorationParams(
            max_iterations=settings["max_iterations"],
            restarts=settings["restarts"],
            max_rounds=settings["max_rounds"])
        max_blocks = settings["max_blocks"]
    overrides = {}
    if iterations is not None:
        overrides["max_iterations"] = iterations
    if restarts is not None:
        overrides["restarts"] = restarts
    if overrides:
        params = params.with_(**overrides)
    return params, max_blocks


def _resolve_observer(trace, observer):
    """The observer to use and whether this call owns (closes) it."""
    if observer is not None:
        return observer, False
    if trace:
        return Observer(sinks=[JsonlSink(trace)]), True
    return NULL_OBSERVER, False


def list_engines():
    """``(name, description)`` pairs of every registered engine.

    The names are valid ``engine=`` arguments to :func:`explore` and
    :class:`~repro.core.flow.ISEDesignFlow` (and ``--engine`` on the
    CLI); see :mod:`repro.engines` for the registration hooks.
    """
    return tuple((name, engines.describe(name))
                 for name in engines.available())


def explore(workload, *, issue=2, ports="4/2", profile="quick", jobs=None,
            batch=None, seed=0, trace=None, opt="O3", iterations=None,
            restarts=None, observer=None, engine="aco"):
    """Run the full ISE exploration for one workload on one machine.

    Parameters (all keyword-only)
    -----------------------------
    workload:
        Name of a bundled benchmark (see ``repro workloads``).
    issue / ports:
        Machine shape: issue width and register-file read/write ports.
    profile:
        Effort profile (``quick`` / ``normal`` / ``full``), or ``None``
        for the library's §5.1 defaults.
    engine:
        Registry name of the exploration engine (``"aco"`` — the
        paper's algorithm — by default; see :func:`list_engines` or
        ``repro engines``).  Unknown names raise
        :class:`~repro.errors.ReproError` listing the valid set.
    jobs:
        Worker processes (``None`` → ``$REPRO_JOBS`` or serial); the
        result is bit-identical at any setting.  Pooled workers persist
        across calls (``REPRO_POOL_PERSIST=0`` opts out).
    batch:
        Ants advanced in lockstep per ACO iteration batch (``None`` →
        ``$REPRO_ANT_BATCH`` or 16).  ``batch=1`` selects the scalar
        reference loop — bit-identical to the pre-batching engine;
        larger sizes are faster but draw a different RNG stream.
    seed:
        RNG seed of the ACO colonies.
    trace:
        Path for a JSON-lines observability trace of the run.
    opt:
        Optimisation level the program is compiled at (``O0``/``O3``).
    iterations / restarts:
        Explicit effort overrides on top of the profile.
    observer:
        A caller-owned :class:`~repro.obs.Observer`; overrides
        ``trace`` and is *not* closed by this call.
    """
    obs, owned = _resolve_observer(trace, observer)
    bundle = get_workload(workload)
    program, args = bundle.build()
    params, max_blocks = _resolve_params(profile, iterations, restarts)
    flow_kwargs = dict(params=params, seed=seed, jobs=jobs, batch=batch,
                       obs=obs, engine=engine)
    if max_blocks is not None:
        flow_kwargs["max_blocks"] = max_blocks
    flow = ISEDesignFlow(MachineConfig(issue, ports), **flow_kwargs)
    try:
        explored = flow.explore_application(program, args=args,
                                            opt_level=opt)
        metrics = obs.metrics.snapshot() if obs else None
    finally:
        if owned:
            obs.close()
            flow.obs = NULL_OBSERVER
    return ExploreResult(
        workload=bundle.name, opt=opt, issue=issue, ports=ports,
        profile=profile, seed=seed,
        baseline_cycles=explored.baseline_cycles,
        candidates=tuple(c.describe() for c in explored.candidates),
        engine=engine, trace_path=trace, metrics=metrics,
        explored=explored, flow=flow)


def evaluate(source, *, max_area=None, max_ises=None, enable_sharing=True,
             issue=2, ports="4/2", profile="quick", jobs=None, batch=None,
             seed=0, trace=None, opt="O3", iterations=None, restarts=None,
             observer=None, engine="aco"):
    """Select ISEs under a budget and report the final metrics.

    ``source`` is either an :class:`ExploreResult` (the exploration is
    reused — the cheap path for budget sweeps) or a workload name (a
    fresh :func:`explore` runs first with the machine/effort keywords).
    ``max_area`` (µm²) and ``max_ises`` (unused-opcode count) bound the
    selection; ``enable_sharing`` toggles §5.1 hardware sharing.
    """
    obs, owned = _resolve_observer(trace, observer)
    try:
        if isinstance(source, ExploreResult):
            result = source
        else:
            result = explore(source, issue=issue, ports=ports,
                             profile=profile, jobs=jobs, batch=batch,
                             seed=seed, opt=opt, iterations=iterations,
                             restarts=restarts, observer=obs,
                             engine=engine)
        flow = result.flow
        constraints = ISEConstraints(max_area=max_area, max_ises=max_ises)
        saved_obs = flow.obs
        flow.obs = obs
        try:
            report = flow.evaluate(result.explored, constraints,
                                   enable_sharing=enable_sharing)
        finally:
            flow.obs = saved_obs
        metrics = obs.metrics.snapshot() if obs else None
    finally:
        if owned:
            obs.close()
    return SelectionResult(
        workload=result.workload, opt=result.opt, issue=result.issue,
        ports=result.ports, max_area=max_area, max_ises=max_ises,
        baseline_cycles=report.baseline_cycles,
        final_cycles=report.final_cycles, reduction=report.reduction,
        num_ises=report.num_ises, area=report.area,
        ises=tuple(entry.representative.describe()
                   for entry in report.selection.selected),
        metrics=metrics, report=report)


def serve(host="127.0.0.1", port=0, *, max_inflight=8,
          request_timeout=None, threaded=True):
    """Start the exploration service daemon (``repro serve``).

    ``threaded=True`` (the default) runs the server on a daemon thread
    and returns the started :class:`~repro.serve.server.ExploreServer`
    — connect a :class:`ServiceClient` to ``server.address`` and call
    ``server.stop()`` when done.  ``threaded=False`` serves on the
    calling thread until interrupted (the CLI path).

    Every served response is bit-identical to the one-shot
    :func:`explore` / :func:`evaluate` / :func:`sweep` call carrying
    the same request; see docs/SERVICE.md for the wire format, scope
    multiplexing and quota semantics.
    """
    from .serve.server import ExploreServer

    server = ExploreServer(host=host, port=port,
                           max_inflight=max_inflight,
                           request_timeout=request_timeout)
    if threaded:
        server.start_in_thread()
    else:
        server.run_blocking()
    return server


def sweep(workloads, *, machines=None, budgets=None, opt="O3",
          profile="quick", seed=0, engine="aco", jobs=None, batch=None,
          iterations=None, restarts=None, shard=None, trace=None,
          observer=None):
    """Run a (workload × machine × budget) design-space sweep.

    Each (workload, machine) cell is explored once, then evaluated at
    every area budget; the returned
    :class:`~repro.dist.sweep.SweepResult` carries one frozen row per
    (cell, budget) in canonical grid order, plus a content ``digest``.

    ``machines`` is a sequence of ``(ports, issue)`` pairs (default:
    the paper's §5.1 cases); ``budgets`` a sequence of area budgets in
    µm² (default 20k/80k/320k).  ``shard=(index, count)`` runs only the
    cells that hash onto that shard — partitioning is deterministic by
    cell fingerprint, so ``count`` hosts each running their shard and
    :func:`repro.dist.sweep.merge_sweeps` over the parts reproduce the
    serial digest bit-identically.  Point ``REPRO_REMOTE_CACHE`` at a
    ``repro cache-server`` to share evaluation work between shards.

    ``trace``/``observer`` behave as in :func:`explore`; sweep-level
    progress lands on the ``sweep.*`` counters and events.
    """
    from .dist.sweep import DEFAULT_BUDGETS, run_sweep

    obs, owned = _resolve_observer(trace, observer)
    try:
        return run_sweep(
            workloads=workloads,
            machines=PAPER_CASES if machines is None else machines,
            budgets=DEFAULT_BUDGETS if budgets is None else budgets,
            opt=opt, profile=profile, seed=seed, engine=engine,
            jobs=jobs, batch=batch, iterations=iterations,
            restarts=restarts, shard=shard, obs=obs)
    finally:
        if owned:
            obs.close()
