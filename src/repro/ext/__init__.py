"""Extensions from the thesis's future-work section (§6)."""

from .partitioning import PartitionResult, Task, TaskGraph, partition

__all__ = ["PartitionResult", "Task", "TaskGraph", "partition"]
