"""Hardware/software partitioning via the ISE exploration engine.

The thesis's §6 observes that the combined problem of hardware-software
partitioning, hardware design-space exploration and scheduling
(Chatha & Vemuri [16]; Kalavade & Lee's extended partitioning [17])
maps one-to-one onto the ISE exploration algorithm:

* partitioning       ↔ choosing a hardware or software implementation
  option per task,
* design-space exploration ↔ selecting *which* hardware bin,
* scheduling         ↔ identifying the critical path of the task graph.

This module performs that "slight modification": a coarse-grained
:class:`TaskGraph` (tasks with multi-cycle software latencies and one
or more hardware bins) is lowered onto the exact same DFG + IO-table
machinery, and :func:`partition` runs :class:`~repro.engines.aco.AcoEngine` over
it.  Hardware-mapped connected task groups come back as co-processor
blocks with their combined latency and area — the analogue of ISEs at
task granularity.
"""

from ..config import ExplorationParams, ISEConstraints
from ..engines.aco import AcoEngine
from ..errors import ConfigError, IRError
from ..graph.dfg import DFG
from ..hwlib.options import HardwareOption, IOTable, SoftwareOption
from ..hwlib.technology import Technology
from ..isa.instruction import Operation
from ..isa.opcodes import OpCategory, Opcode
from ..sched.machine import MachineConfig

#: A synthetic groupable opcode for coarse-grained tasks.
TASK_OPCODE = Opcode("task", OpCategory.ALU, num_sources=0, num_dests=1,
                     groupable=True)


class Task:
    """One task of the system: software latency + hardware bins.

    Parameters
    ----------
    name:
        Unique task name.
    sw_cycles:
        Execution time on the processor, in scheduler time units.
    hw_bins:
        List of ``(latency_units, area)`` hardware implementation
        points (possibly empty for software-only tasks).
    deps:
        Names of tasks this one consumes data from.
    """

    def __init__(self, name, sw_cycles, hw_bins=(), deps=()):
        if sw_cycles < 1:
            raise ConfigError("software latency must be >= 1")
        self.name = str(name)
        self.sw_cycles = int(sw_cycles)
        self.hw_bins = [(float(lat), float(area)) for lat, area in hw_bins]
        if any(lat <= 0 or area < 0 for lat, area in self.hw_bins):
            raise ConfigError("hardware bins need positive latency, "
                              "non-negative area")
        self.deps = tuple(deps)

    def __repr__(self):
        return "Task({!r}, sw={}, {} hw bins)".format(
            self.name, self.sw_cycles, len(self.hw_bins))


class TaskGraph:
    """An acyclic task graph (tasks added in dependency order)."""

    def __init__(self, name="system"):
        self.name = str(name)
        self._tasks = []
        self._by_name = {}

    def add_task(self, name, sw_cycles, hw_bins=(), deps=()):
        """Register a task (dependencies must already exist)."""
        if name in self._by_name:
            raise IRError("duplicate task {!r}".format(name))
        for dep in deps:
            if dep not in self._by_name:
                raise IRError(
                    "task {!r} depends on unknown task {!r}".format(
                        name, dep))
        task = Task(name, sw_cycles, hw_bins, deps)
        self._by_name[name] = task
        self._tasks.append(task)
        return task

    @property
    def tasks(self):
        """Tasks in registration order."""
        return list(self._tasks)

    def __len__(self):
        return len(self._tasks)

    # -- lowering ---------------------------------------------------------

    def to_dfg(self):
        """Lower to a DFG + IO tables for the exploration engine."""
        dfg = DFG(label=self.name, function="taskgraph")
        tables = {}
        uid_of = {}
        for uid, task in enumerate(self._tasks):
            uid_of[task.name] = uid
            operation = Operation(
                uid, TASK_OPCODE,
                sources=tuple("v_" + dep for dep in task.deps),
                dests=("v_" + task.name,))
            dfg.add_operation(operation)
            hardware = [
                HardwareOption("HW-{}".format(i + 1), delay_ns=lat,
                               area=area)
                for i, (lat, area) in enumerate(task.hw_bins)
            ]
            tables[uid] = IOTable(
                software=[SoftwareOption("SW", cycles=task.sw_cycles,
                                         fu_kind="alu")],
                hardware=hardware)
        for task in self._tasks:
            for dep in task.deps:
                dfg.add_data_edge(uid_of[dep], uid_of[task.name],
                                  "v_" + dep)
        # Sink tasks produce system outputs.
        consumed = {dep for task in self._tasks for dep in task.deps}
        for task in self._tasks:
            if task.name not in consumed:
                dfg.output_nodes.add(uid_of[task.name])
        dfg.producer_of = {"v_" + t.name: uid_of[t.name]
                           for t in self._tasks}
        return dfg, tables


class PartitionResult:
    """Outcome of :func:`partition`."""

    def __init__(self, task_graph, exploration, uid_to_name):
        self.task_graph = task_graph
        self.exploration = exploration
        self._names = uid_to_name

    @property
    def makespan_software(self):
        """All-software schedule length."""
        return self.exploration.base_cycles

    @property
    def makespan_partitioned(self):
        """Schedule length after partitioning."""
        return self.exploration.final_cycles

    @property
    def speedup(self):
        """All-software makespan over partitioned makespan."""
        if self.makespan_partitioned == 0:
            return 1.0
        return self.makespan_software / self.makespan_partitioned

    @property
    def hardware_area(self):
        """Total area of the hardware-mapped blocks."""
        return self.exploration.total_area

    def hardware_blocks(self):
        """Hardware-mapped task groups as lists of task names."""
        return [sorted(self._names[uid] for uid in candidate.members)
                for candidate in self.exploration.candidates]

    def hardware_tasks(self):
        """Names of every hardware-mapped task."""
        names = set()
        for block in self.hardware_blocks():
            names.update(block)
        return names

    def software_tasks(self):
        """Names of the tasks left on the processor."""
        hw = self.hardware_tasks()
        return {t.name for t in self.task_graph.tasks} - hw

    def __repr__(self):
        return ("PartitionResult({} -> {} units, {:.2f}x, "
                "{:.0f} area)".format(
                    self.makespan_software, self.makespan_partitioned,
                    self.speedup, self.hardware_area))


def partition(task_graph, processors=1, hw_slots=1, max_area=None,
              params=None, seed=0):
    """Partition a task graph between a CPU and custom hardware.

    Parameters
    ----------
    task_graph:
        The :class:`TaskGraph` to map.
    processors:
        Number of software execution slots per time unit.
    hw_slots:
        Concurrent hardware-block launches per time unit.
    max_area:
        Optional total hardware area budget.
    params / seed:
        ACO configuration (defaults: modest effort).

    The time unit of task latencies equals one scheduler cycle: the
    machine's technology is configured so ``delay 1.0 == 1 cycle``.
    """
    dfg, tables = task_graph.to_dfg()
    # 1 "ns" == 1 cycle: tasks' hw latencies are already in time units.
    technology = Technology(clock_mhz=1000.0)
    machine = MachineConfig(
        processors + hw_slots, "64/32",
        fu_counts={"alu": processors, "mul": processors,
                   "mem": processors, "branch": processors,
                   "asfu": hw_slots},
        technology=technology)
    constraints = ISEConstraints(n_in=64, n_out=32, max_area=max_area)
    params = params or ExplorationParams(
        max_iterations=120, restarts=2, max_rounds=8)
    explorer = AcoEngine(
        machine, params=params, constraints=constraints,
        technology=technology, seed=seed)
    exploration = explorer.explore(dfg, io_tables=tables)
    if max_area is not None:
        exploration = _apply_area_budget(
            explorer, dfg, tables, exploration, max_area)
    uid_to_name = {uid: task.name
                   for uid, task in enumerate(task_graph.tasks)}
    return PartitionResult(task_graph, exploration, uid_to_name)


def _apply_area_budget(explorer, dfg, tables, exploration, max_area):
    """Greedily keep (or shrink) the best candidates within the budget.

    A hardware block that overflows the remaining budget is not simply
    dropped: its most expensive tasks are shed one by one (keeping the
    largest convex remainder) until it fits — co-design tools offer the
    partial block rather than nothing.
    """
    from ..core.candidate import ISECandidate
    from ..core.exploration import ExplorationResult
    from ..core.make_convex import legalize_components

    ranked = sorted(exploration.candidates,
                    key=lambda c: (-c.cycle_saving, c.area))
    kept, used = [], 0.0
    for candidate in ranked:
        remaining = max_area - used
        fitted = _fit_candidate(explorer, dfg, candidate, remaining,
                                legalize_components, ISECandidate)
        if fitted is not None:
            kept.append(fitted)
            used += fitted.area
    final = explorer._evaluate(dfg, kept, tables)
    return ExplorationResult(
        dfg, kept, exploration.base_cycles, final,
        exploration.rounds, exploration.iterations)


def _fit_candidate(explorer, dfg, candidate, budget, legalize, make):
    """Shrink ``candidate`` until its area fits ``budget`` (or None)."""
    members = set(candidate.members)
    option_of = dict(candidate.option_of)
    while len(members) >= 2:
        trial = make(dfg, members,
                     {uid: option_of[uid] for uid in members},
                     explorer.technology, source="PART")
        if trial.area <= budget:
            trial.cycle_saving = candidate.cycle_saving
            return trial
        costliest = max(members, key=lambda uid: option_of[uid].area)
        members.discard(costliest)
        pieces = legalize(dfg, members, explorer.constraints)
        if not pieces:
            return None
        members = set(max(pieces, key=len))
    return None
