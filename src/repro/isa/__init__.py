"""PISA-like instruction-set model (opcodes, operations, register file)."""

from .opcodes import (
    OpCategory,
    Opcode,
    all_opcodes,
    groupable_opcodes,
    is_known,
    opcode,
)
from .instruction import Operation
from .registers import RegisterFile

__all__ = [
    "OpCategory",
    "Opcode",
    "Operation",
    "RegisterFile",
    "all_opcodes",
    "groupable_opcodes",
    "is_known",
    "opcode",
]
