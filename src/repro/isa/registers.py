"""Register-file model.

The multi-issue machine of chapter 5 is characterised (amongst other
things) by the number of register-file read and write ports — 4/2, 6/3,
8/4 and 10/5 in the evaluation.  :class:`RegisterFile` is a small value
object that the scheduler and the ISE constraints consult for per-cycle
port budgets.
"""

from ..errors import ConfigError


class RegisterFile:
    """A register file with a fixed number of read and write ports.

    Parameters
    ----------
    read_ports / write_ports:
        Per-cycle operand bandwidth.  The paper writes these as
        ``read/write``, e.g. ``6/3``.
    num_registers:
        Architectural register count (PISA has 32 integer registers);
        only used for sanity checks in the interpreter front end.
    """

    __slots__ = ("read_ports", "write_ports", "num_registers")

    def __init__(self, read_ports, write_ports, num_registers=32):
        if read_ports < 1 or write_ports < 1:
            raise ConfigError("register file needs at least 1R/1W port")
        if num_registers < 1:
            raise ConfigError("register file needs at least one register")
        self.read_ports = int(read_ports)
        self.write_ports = int(write_ports)
        self.num_registers = int(num_registers)

    @classmethod
    def from_spec(cls, spec):
        """Parse a paper-style ``"6/3"`` port specification."""
        try:
            read_s, write_s = spec.split("/")
            return cls(int(read_s), int(write_s))
        except (ValueError, AttributeError):
            raise ConfigError(
                "register port spec must look like '6/3', got {!r}".format(spec)
            ) from None

    @property
    def spec(self):
        """The paper-style ``"R/W"`` string."""
        return "{}/{}".format(self.read_ports, self.write_ports)

    def __repr__(self):
        return "RegisterFile({})".format(self.spec)

    def __eq__(self, other):
        return (isinstance(other, RegisterFile)
                and other.read_ports == self.read_ports
                and other.write_ports == self.write_ports
                and other.num_registers == self.num_registers)

    def __hash__(self):
        return hash((self.read_ports, self.write_ports, self.num_registers))
