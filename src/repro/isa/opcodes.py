"""PISA-like opcode definitions.

The evaluation of the paper targets the Portable Instruction Set
Architecture (PISA) of SimpleScalar, a MIPS-like load/store ISA.  This
module enumerates the subset of PISA relevant to ISE exploration and
tags each opcode with the properties the rest of the library needs:

* a :class:`OpCategory` (ALU, shift, multiply, memory, branch, ...),
* whether the opcode may legally be packed into an ISE (§4.2 forbids
  loads and stores; branches terminate basic blocks so never appear
  inside a DFG),
* the number of register sources / destinations of the canonical form.

Table 5.1.1 of the thesis lists hardware implementation options only
for the groupable opcodes; :mod:`repro.hwlib.database` keys off the
names defined here.
"""

import enum

from ..errors import UnknownOpcodeError


class OpCategory(enum.Enum):
    """Coarse functional class of an opcode.

    The scheduler maps categories onto function-unit types and the
    hardware database stores one (delay, area) record per groupable
    category member.
    """

    ALU = "alu"            # add/sub/logic/compare
    SHIFT = "shift"
    MULTIPLY = "multiply"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    CALL = "call"
    MOVE = "move"          # register moves / immediates
    PSEUDO = "pseudo"      # phi-like copies introduced by the front end


class Opcode:
    """One opcode of the PISA-like instruction set.

    Parameters
    ----------
    name:
        Assembly mnemonic, e.g. ``"addu"``.
    category:
        The :class:`OpCategory` of the opcode.
    num_sources / num_dests:
        Register operand counts of the canonical three-address form.
    has_immediate:
        True when the second source is an immediate rather than a
        register (``addi`` et al.).  Immediates do not consume register
        file read ports.
    groupable:
        True when §4.2 allows the opcode inside an ISE.
    """

    __slots__ = ("name", "category", "num_sources", "num_dests",
                 "has_immediate", "groupable")

    def __init__(self, name, category, num_sources=2, num_dests=1,
                 has_immediate=False, groupable=True):
        self.name = name
        self.category = category
        self.num_sources = num_sources
        self.num_dests = num_dests
        self.has_immediate = has_immediate
        self.groupable = groupable

    def __repr__(self):
        return "Opcode({!r})".format(self.name)

    def __eq__(self, other):
        return isinstance(other, Opcode) and other.name == self.name

    def __hash__(self):
        return hash(self.name)

    @property
    def is_memory(self):
        """True for loads and stores (never groupable into ISEs)."""
        return self.category in (OpCategory.LOAD, OpCategory.STORE)

    @property
    def is_control(self):
        """True for branches and calls."""
        return self.category in (OpCategory.BRANCH, OpCategory.CALL)

    @property
    def register_reads(self):
        """Register file read ports consumed by one instance."""
        if self.has_immediate and self.num_sources > 0:
            return self.num_sources - 1
        return self.num_sources


def _build_table():
    a, s, m = OpCategory.ALU, OpCategory.SHIFT, OpCategory.MULTIPLY
    table = {}

    def op(name, category, **kwargs):
        table[name] = Opcode(name, category, **kwargs)

    # Arithmetic (Table 5.1.1 rows: add/addi/addu/addiu, sub/subu).
    op("add", a)
    op("addi", a, has_immediate=True)
    op("addu", a)
    op("addiu", a, has_immediate=True)
    op("sub", a)
    op("subu", a)
    # Multiplies.
    op("mult", m)
    op("multu", m)
    # Logic (and/andi, or/ori, xor/xori, nor).
    op("and", a)
    op("andi", a, has_immediate=True)
    op("or", a)
    op("ori", a, has_immediate=True)
    op("xor", a)
    op("xori", a, has_immediate=True)
    op("nor", a)
    # Set-on-less-than family.
    op("slt", a)
    op("slti", a, has_immediate=True)
    op("sltu", a)
    op("sltiu", a, has_immediate=True)
    # Shifts (sll/sllv/srl/srlv/sra/srav). The non-v forms shift by an
    # immediate amount.
    op("sll", s, has_immediate=True)
    op("sllv", s)
    op("srl", s, has_immediate=True)
    op("srlv", s)
    op("sra", s, has_immediate=True)
    op("srav", s)
    # Moves / constants — executed on ALU ports, groupable (they fold
    # into ASFU wiring for free but we keep the conservative view of
    # treating them like 1-source ALU ops).
    op("lui", OpCategory.MOVE, num_sources=0, has_immediate=True,
       groupable=False)
    op("li", OpCategory.MOVE, num_sources=0, has_immediate=True,
       groupable=False)
    op("move", OpCategory.MOVE, num_sources=1, groupable=False)
    # Memory — never groupable (§4.2 constraint 4).
    op("lw", OpCategory.LOAD, num_sources=1, groupable=False)
    op("lh", OpCategory.LOAD, num_sources=1, groupable=False)
    op("lhu", OpCategory.LOAD, num_sources=1, groupable=False)
    op("lb", OpCategory.LOAD, num_sources=1, groupable=False)
    op("lbu", OpCategory.LOAD, num_sources=1, groupable=False)
    op("sw", OpCategory.STORE, num_sources=2, num_dests=0, groupable=False)
    op("sh", OpCategory.STORE, num_sources=2, num_dests=0, groupable=False)
    op("sb", OpCategory.STORE, num_sources=2, num_dests=0, groupable=False)
    # Control — terminates basic blocks.
    op("beq", OpCategory.BRANCH, num_sources=2, num_dests=0, groupable=False)
    op("bne", OpCategory.BRANCH, num_sources=2, num_dests=0, groupable=False)
    op("blez", OpCategory.BRANCH, num_sources=1, num_dests=0, groupable=False)
    op("bgtz", OpCategory.BRANCH, num_sources=1, num_dests=0, groupable=False)
    op("bltz", OpCategory.BRANCH, num_sources=1, num_dests=0, groupable=False)
    op("bgez", OpCategory.BRANCH, num_sources=1, num_dests=0, groupable=False)
    op("j", OpCategory.BRANCH, num_sources=0, num_dests=0, groupable=False)
    op("jal", OpCategory.CALL, num_sources=0, num_dests=0, groupable=False)
    op("jr", OpCategory.BRANCH, num_sources=1, num_dests=0, groupable=False)
    # Contracted ISE supernode — created when a found candidate is fixed
    # into the DFG between exploration rounds.  Never re-groupable.
    op("ise", OpCategory.PSEUDO, num_sources=0, num_dests=0, groupable=False)
    return table


_OPCODES = _build_table()


def opcode(name):
    """Look up an :class:`Opcode` by mnemonic.

    Raises :class:`~repro.errors.UnknownOpcodeError` for unknown names.
    """
    try:
        return _OPCODES[name]
    except KeyError:
        raise UnknownOpcodeError(name) from None


def all_opcodes():
    """Return every defined opcode, sorted by mnemonic."""
    return [op for _, op in sorted(_OPCODES.items())]


def groupable_opcodes():
    """Return the opcodes that §4.2 allows inside an ISE."""
    return [op for op in all_opcodes() if op.groupable]


def is_known(name):
    """True when ``name`` is a defined mnemonic."""
    return name in _OPCODES
