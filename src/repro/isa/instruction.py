"""Operation objects — the vertices of a data-flow graph.

The thesis calls every assembly instruction in a basic block an
"operation" (or "node").  :class:`Operation` stores the opcode, the
SSA-like value names it reads and writes, and an optional immediate.
Identity is by ``uid`` (unique within one DFG), so two ``addu``
operations never compare equal.
"""

from .opcodes import Opcode, opcode as _lookup


class Operation:
    """A single PISA-like operation inside a basic block.

    Parameters
    ----------
    uid:
        Integer identifier unique within the containing basic block /
        DFG.  Used as the networkx node key.
    op:
        Either an :class:`~repro.isa.opcodes.Opcode` or a mnemonic
        string (looked up in the opcode table).
    sources:
        Names of the values read (registers/temporaries).  Immediates
        are *not* listed here.
    dests:
        Names of the values written (usually one).
    immediate:
        Optional immediate operand.
    """

    __slots__ = ("uid", "opcode", "sources", "dests", "immediate")

    def __init__(self, uid, op, sources=(), dests=(), immediate=None):
        self.uid = int(uid)
        self.opcode = op if isinstance(op, Opcode) else _lookup(op)
        self.sources = tuple(sources)
        self.dests = tuple(dests)
        self.immediate = immediate

    @property
    def name(self):
        """Mnemonic of the opcode."""
        return self.opcode.name

    @property
    def groupable(self):
        """True when this operation may be packed into an ISE."""
        return self.opcode.groupable

    @property
    def is_memory(self):
        """True for loads and stores."""
        return self.opcode.is_memory

    @property
    def register_reads(self):
        """Register file read ports this operation consumes."""
        return len(self.sources)

    @property
    def register_writes(self):
        """Register file write ports this operation consumes."""
        return len(self.dests)

    def __repr__(self):
        imm = "" if self.immediate is None else ", imm={}".format(self.immediate)
        return "Operation(#{} {} {} <- {}{})".format(
            self.uid, self.name, list(self.dests), list(self.sources), imm)

    def __eq__(self, other):
        return isinstance(other, Operation) and other.uid == self.uid

    def __hash__(self):
        return hash(self.uid)

    def pretty(self):
        """Assembly-like one-line rendering."""
        parts = [self.name]
        operands = list(self.dests) + list(self.sources)
        if self.immediate is not None:
            operands.append(str(self.immediate))
        if operands:
            parts.append(", ".join(str(x) for x in operands))
        return " ".join(parts)
