"""Worker-pool benchmark: parity, scaling efficiency and startup
amortization of the persistent shared-memory pool.

Runs the reference workload set (crc32, bitcount, adpcm — the same hot
blocks, parameters and seed as ``test_bench_sched.py``) through
``explore_many`` at ``jobs=1,2,4`` and asserts the **serial golden
digest at every job count** — the pool, its shared-memory broadcast,
the work-stealing dispatch and the cross-worker shared evalcache must
all be observationally invisible.  The engine runs as shipped — the
default lockstep ant batch — so the digest is the *batched* golden
(``test_bench_batch.py``); batching is resolved once at explorer
construction and rides to the workers inside the pickled explorer,
which this parity contract exercises.

Timings land in ``BENCH_pool.json``:

* ``runs`` — wall-clock + speedup per job count (the first pooled run
  of each count is *cold*: it pays worker spawn + an empty shared
  cache);
* ``warm4_s`` / ``startup_amortization`` — a second ``jobs=4`` run on
  the already-warm pool (live workers, populated shared cache); the
  cold/warm ratio is the startup cost the persistence amortizes away;
* ``pool`` — dispatch/steal/broadcast tallies from the pool itself.

Wall-clock gates (≥2.5x at ``jobs=4``, warm ≥1.5x faster than cold)
are asserted when ``REPRO_BENCH_STRICT=1`` — i.e. on reference hosts
that really have 4 CPUs — and recorded otherwise: this container may
have a single core, where a pool can time anything at all.  The clamp
is lifted via the ``_available_cpus`` seam so the pooled *code path*
(and with it the parity contract) is exercised regardless of host.
"""

import hashlib
import json
import os
import time

from repro.config import ExplorationParams
from repro.core import parallel
from repro.core.batch import DEFAULT_BATCH
from repro.core.exploration import MultiIssueExplorer
from repro.core.pool import active_pool, shutdown_pools
from repro.sched.machine import MachineConfig

from conftest import jobs_environment, run_once
from test_bench_batch import BATCHED_GOLDEN_DIGEST
from test_bench_sched import _hot_dfgs, _signature

JOB_COUNTS = (1, 2, 4)
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_pool.json")


def _digest(results):
    sigs = [_signature(r) for r in results]
    return hashlib.sha256(repr(sigs).encode()).hexdigest()


def test_bench_pool_scaling(benchmark, monkeypatch):
    # Engage the pool even on throttled/single-core CI containers; the
    # wall-clock gates below stay opt-in via REPRO_BENCH_STRICT.
    monkeypatch.setattr(parallel, "_available_cpus",
                        lambda: max(4, os.cpu_count() or 1))
    monkeypatch.setenv("REPRO_POOL_PERSIST", "1")
    shutdown_pools()

    dfgs = _hot_dfgs()
    params = ExplorationParams(max_iterations=80, restarts=4, max_rounds=6)

    def explore_at(jobs):
        explorer = MultiIssueExplorer(MachineConfig(2, "4/2"),
                                      params=params, seed=17,
                                      batch=DEFAULT_BATCH)
        start = time.perf_counter()
        results = explorer.explore_many(dfgs, jobs=jobs)
        return results, time.perf_counter() - start

    def measure():
        timings = {}
        digests = {}
        for jobs in JOB_COUNTS:
            results, seconds = explore_at(jobs)
            timings[jobs] = seconds
            digests[jobs] = _digest(results)
        # Second jobs=4 exploration on the warm pool: workers already
        # forked, shared evalcache already populated.
        warm_results, warm_s = explore_at(4)
        digests["warm"] = _digest(warm_results)
        return timings, digests, warm_s

    timings, digests, warm_s = run_once(benchmark, measure)
    pool = active_pool()
    pool_stats = dict(pool.stats) if pool is not None else {}
    shared_entries = pool.cache.count if pool is not None else 0
    shutdown_pools()

    # Hard contract: the golden bit-parity digest holds at every job
    # count, cold and warm.
    for label, digest in digests.items():
        assert digest == BATCHED_GOLDEN_DIGEST, \
            "parity broken at jobs={}".format(label)

    serial_s = timings[1]
    cold4_s = timings[4]
    amortization = cold4_s / warm_s if warm_s > 0 else 0.0
    payload = {
        "workloads": ["crc32", "bitcount", "adpcm"],
        "blocks": len(dfgs),
        "jobs": jobs_environment(max(JOB_COUNTS)),
        "runs": {
            str(jobs): {
                "seconds": round(timings[jobs], 3),
                "speedup_vs_serial": round(serial_s / timings[jobs], 3)
                if timings[jobs] > 0 else 0.0,
                "scaling_efficiency": round(
                    serial_s / (timings[jobs] * jobs), 3)
                if timings[jobs] > 0 else 0.0,
            }
            for jobs in JOB_COUNTS
        },
        "warm4_s": round(warm_s, 3),
        "startup_amortization": round(amortization, 3),
        "pool": {
            "dispatches": pool_stats.get("dispatches", 0),
            "tasks": pool_stats.get("tasks", 0),
            "steals": pool_stats.get("steals", 0),
            "broadcast_bytes": pool_stats.get("broadcast_bytes", 0),
            "shared_cache_entries": shared_entries,
            "shared_cache_inserts": pool_stats.get("shared_inserts", 0),
        },
        "golden_digest": BATCHED_GOLDEN_DIGEST,
    }
    with open(OUT_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print("pool: serial {:.2f}s | jobs=4 cold {:.2f}s ({:.2f}x) | "
          "warm {:.2f}s ({:.2f}x cold) | {} steal(s), {} shared "
          "entrie(s) on {} cpu(s)".format(
              serial_s, cold4_s,
              serial_s / cold4_s if cold4_s > 0 else 0.0,
              warm_s, amortization, pool_stats.get("steals", 0),
              shared_entries, os.cpu_count()))

    assert all(seconds > 0 for seconds in timings.values())
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        if (os.cpu_count() or 1) >= max(JOB_COUNTS):
            # Reference-host gates: 4 workers must clear 2.5x serial,
            # and the warm pool must beat the cold pooled call by 1.5x.
            assert serial_s / cold4_s >= 2.5
            assert amortization >= 1.5
        else:
            # Fewer cores than workers: 4 processes time-slice one or
            # two CPUs, so wall-clock multipliers are meaningless here.
            # Parity was still asserted above; only the scaling gates
            # are host-dependent.
            print("strict scaling gates skipped: {} cpu(s) < {} "
                  "worker(s)".format(os.cpu_count(), max(JOB_COUNTS)))
