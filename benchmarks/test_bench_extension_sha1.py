"""Extension bench — ISE exploration on SHA-1 (beyond the paper).

The paper's benchmark suite stops at seven kernels; SHA-1 is the
obvious eighth (MiBench security), dominated by rotate-xor-add chains
that map beautifully onto ASFUs.  This bench runs the full MI flow on
it and checks that the explorer collapses the rotate idioms: a
double-digit reduction with a handful of ISEs.
"""

from repro.config import ExplorationParams, ISEConstraints
from repro.core.flow import ISEDesignFlow
from repro.sched import MachineConfig
from repro.workloads import get_workload

from conftest import run_once


def test_bench_extension_sha1(benchmark):
    def run():
        workload = get_workload("sha1")
        program, args = workload.build()
        params = ExplorationParams(max_iterations=80, restarts=1,
                                   max_rounds=10)
        flow = ISEDesignFlow(MachineConfig(2, "4/2"), params=params,
                             seed=13, max_blocks=4)
        explored = flow.explore_application(program, args=args,
                                            opt_level="O3")
        report = flow.evaluate(explored,
                               ISEConstraints(max_area=80_000))
        return report

    report = run_once(benchmark, run)
    print()
    print("Extension: SHA-1 on (4/2, 2IS) at O3")
    print("  baseline {} cycles -> {} cycles "
          "({:.2%} reduction, {} ISEs, {:.0f} um2)".format(
              report.baseline_cycles, report.final_cycles,
              report.reduction, report.num_ises, report.area))
    for entry in report.selection.selected:
        print("  " + entry.representative.describe())
    assert report.reduction > 0.10
    assert report.num_ises >= 1
    assert report.area <= 80_000
