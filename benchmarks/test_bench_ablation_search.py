"""Ablation A5 — search-strategy comparison (§2.2's model choice).

The thesis picks ant-colony optimisation over other evolutionary models
on mapping-ease grounds.  This bench makes the comparison empirical on
the hot blocks of three workloads: ACO (MI), simulated annealing over
option flips, and deterministic greedy cone growth — same constraints,
same evaluator.
"""

from repro.baselines import AnnealingExplorer, GreedyExplorer
from repro.config import ExplorationParams
from repro.core import MultiIssueExplorer
from repro.graph import build_dfg
from repro.ir.analysis import liveness
from repro.ir.passes import optimize
from repro.sched import MachineConfig
from repro.workloads import get_workload

from conftest import run_once

BLOCKS = (("crc32", "crc32", "bit_loop"),
          ("bitcount", "bitcount", "word_loop"),
          ("fft", "fft", "bfly"))


def _hot_dfgs():
    for workload, func_name, label in BLOCKS:
        program, __ = get_workload(workload).build()
        program = optimize(program, "O3")
        func = program.function(func_name)
        ___, live_out = liveness(func)
        yield workload, build_dfg(func.block(label), live_out[label],
                                  function=func_name)


def test_bench_ablation_search(benchmark):
    def run():
        machine = MachineConfig(2, "4/2")
        params = ExplorationParams(max_iterations=100, restarts=1,
                                   max_rounds=6)
        rows = {}
        for workload, dfg in _hot_dfgs():
            aco = MultiIssueExplorer(machine, params=params,
                                     seed=7).explore(dfg)
            sa = AnnealingExplorer(machine, seed=7,
                                   steps=600).explore(dfg)
            greedy = GreedyExplorer(machine).explore(dfg)
            rows[workload] = {
                "base": aco.base_cycles,
                "ACO": (aco.final_cycles, aco.total_area),
                "SA": (sa.final_cycles, sa.total_area),
                "GREEDY": (greedy.final_cycles, greedy.total_area),
            }
        return rows

    rows = run_once(benchmark, run)
    print()
    print("A5: search strategies on hot blocks (4/2, 2IS, O3)")
    print("  {:10s} {:>6} {:>14} {:>14} {:>14}".format(
        "block", "base", "ACO", "SA", "greedy"))
    for workload, row in rows.items():
        cells = "  {:10s} {:>6}".format(workload, row["base"])
        for algo in ("ACO", "SA", "GREEDY"):
            cycles, area = row[algo]
            cells += " {:>6}c/{:>6.0f}".format(cycles, area)
        print(cells)
    for workload, row in rows.items():
        base = row["base"]
        # ACO always improves the block and dominates the greedy
        # baseline outright.
        assert row["ACO"][0] < base, workload
        assert row["ACO"][0] <= row["GREEDY"][0], workload
        # Annealing is cycle-competitive but area-blind: wherever it
        # beats ACO on cycles it spends at least as much silicon (the
        # honest trade-off behind §2.2's model choice).
        if row["SA"][0] < row["ACO"][0]:
            assert row["SA"][1] >= row["ACO"][1], workload
