"""Packed-bitset legality kernel benchmark: parity and speedup.

Probes a 96-node fuzz block (the size regime where §4.2 checks dominate
exploration time) with a 2000-candidate pool three ways:

* the set-based reference (``is_legal_reference`` — the oracle),
* the scalar bitset fast path (``BitsetDFG.is_legal``),
* the batched row API (whole pool as one packed matrix op).

Parity across all three is a **hard** assertion on every run.  The
wall-clock contract — scalar and batched each ≥5x the reference on the
same pool — follows the repo convention: asserted when
``REPRO_BENCH_STRICT=1`` (reference hosts) and recorded otherwise.

The second half is the engine A/B: the scalar golden engine
(``batch=1``, same blocks/parameters/seed as ``test_bench_sched.py``)
is run once with ``REPRO_BITSET=0`` and once with the kernel live, and
both runs must reproduce the pinned scalar ``GOLDEN_DIGEST`` — the
kernel is an exact transformation, not a new RNG lineage.

Timings and digests land in ``BENCH_bitset.json``.
"""

import hashlib
import json
import os
import random
import time

from repro.config import ExplorationParams, ISEConstraints
from repro.core.exploration import MultiIssueExplorer
from repro.graph import analysis
from repro.graph.bitset import BITSET_ENV, bitset_view
from repro.graph.fuzz import random_dfg, random_members
from repro.sched.machine import MachineConfig

from conftest import run_once
from test_bench_sched import GOLDEN_DIGEST, _hot_dfgs, _signature

N_NODES = 96
N_CANDIDATES = 2000
MAX_SIZE = 12
REPEATS = 5
SPEEDUP_GATE = 5.0
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_bitset.json")

CONS = ISEConstraints()


def _pool():
    # Pure ALU block: the engines probe candidates drawn from the
    # groupable, memory-free region (greedy growth, legalized pieces),
    # so the representative hot path is the one where every check runs
    # to the expensive IN/OUT + convexity stages rather than dying on
    # the trivial memory-mask kill both sides share.
    dfg = random_dfg(7, n_nodes=N_NODES, n_values=N_NODES // 4,
                     p_memory=0.0, p_move=0.0)
    rng = random.Random(42)
    candidates = [random_members(rng, dfg, max_size=MAX_SIZE)
                  for __ in range(N_CANDIDATES)]
    return dfg, candidates


def _best_of(fn):
    best = float("inf")
    for __ in range(REPEATS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _engine_digest(bitset_on):
    previous = os.environ.get(BITSET_ENV)
    os.environ[BITSET_ENV] = "1" if bitset_on else "0"
    try:
        explorer = MultiIssueExplorer(
            MachineConfig(2, "4/2"),
            params=ExplorationParams(max_iterations=80, restarts=4,
                                     max_rounds=6),
            seed=17, batch=1)
        results = explorer.explore_many(_hot_dfgs(), jobs=1)
    finally:
        if previous is None:
            os.environ.pop(BITSET_ENV, None)
        else:
            os.environ[BITSET_ENV] = previous
    sigs = [_signature(r) for r in results]
    return hashlib.sha256(repr(sigs).encode()).hexdigest()


def test_bench_bitset_kernel(benchmark):
    dfg, candidates = _pool()
    view = bitset_view(dfg)
    assert view is not None

    def reference():
        return [analysis.is_legal_reference(dfg, members, CONS)
                for members in candidates]

    def scalar():
        return [view.is_legal(members, CONS) for members in candidates]

    def batched():
        return view.legal_rows(view.pack_rows(candidates), CONS)

    def measure():
        # Warm the lazy tables before timing anything.
        ref, fast, rows = reference(), scalar(), batched()
        times = {"reference": _best_of(reference),
                 "scalar": _best_of(scalar),
                 "batched": _best_of(batched)}
        return ref, fast, rows, times

    ref, fast, rows, times = run_once(benchmark, measure)

    # Hard contract: bit-identical verdicts on every candidate.
    assert fast == ref
    assert [bool(ok) for ok in rows] == ref

    scalar_x = times["reference"] / times["scalar"]
    batched_x = times["reference"] / times["batched"]

    # Hard contract: the kernel is observationally invisible to the
    # engines — the scalar golden lineage reproduces with and without
    # the kernel live.
    digest_off = _engine_digest(bitset_on=False)
    digest_on = _engine_digest(bitset_on=True)
    assert digest_off == GOLDEN_DIGEST
    assert digest_on == GOLDEN_DIGEST

    payload = {
        "nodes": N_NODES,
        "candidates": N_CANDIDATES,
        "max_candidate_size": MAX_SIZE,
        "repeats": REPEATS,
        "legal_fraction": round(sum(ref) / len(ref), 3),
        "cpus": os.cpu_count(),
        "times_ms": {name: round(seconds * 1e3, 3)
                     for name, seconds in times.items()},
        "speedup_scalar": round(scalar_x, 2),
        "speedup_batched": round(batched_x, 2),
        "speedup_gate": SPEEDUP_GATE,
        "engine_golden_digest": GOLDEN_DIGEST,
        "engine_digest_bitset_off": digest_off,
        "engine_digest_bitset_on": digest_on,
    }
    with open(OUT_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print("bitset: ref {:.1f}ms | scalar {:.1f}ms ({:.1f}x) | "
          "batched {:.1f}ms ({:.1f}x) | engine digest ok".format(
              times["reference"] * 1e3,
              times["scalar"] * 1e3, scalar_x,
              times["batched"] * 1e3, batched_x))

    assert all(seconds > 0 for seconds in times.values())
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        # Reference-host gate: both fast paths clear 5x the set-based
        # reference on the 96-node pool.
        assert scalar_x >= SPEEDUP_GATE
        assert batched_x >= SPEEDUP_GATE
