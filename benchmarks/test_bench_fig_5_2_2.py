"""Figure 5.2.2 — execution-time reduction vs number of ISEs.

Same grid as Fig. 5.2.1 but sweeping the ISE-count budget 1…32.
Shape checks: monotone in the count, strong diminishing returns (the
first ISE contributes the bulk of the reduction — §5.2's observation
that "most of execution time reduction is dominated by several ISEs,
especially first ISE"), and MI ≥ SI on average.
"""

from repro.eval import ISE_COUNTS, figure_5_2_2, render_stacked_figure

from conftest import run_once


def test_bench_fig_5_2_2(benchmark, ctx):
    rows = run_once(benchmark, lambda: figure_5_2_2(ctx))
    print()
    print(render_stacked_figure(
        rows, "N=", "Fig 5.2.2: avg execution-time reduction (%) "
        "vs number of ISEs"))

    firsts, lasts = [], []
    for column, cells in rows.items():
        values = [cells[n] for n in ISE_COUNTS]
        # Monotone in the budget up to greedy/replacement noise.
        assert all(b >= a - 2.0 for a, b in zip(values, values[1:])), column
        firsts.append(values[0])
        lasts.append(values[-1])

    # Diminishing returns: the single-ISE column already delivers more
    # than half of the full-budget reduction on average.
    avg_first = sum(firsts) / len(firsts)
    avg_last = sum(lasts) / len(lasts)
    assert avg_first >= 0.5 * avg_last

    mi = [v for (algo, *__), cells in rows.items() if algo == "MI"
          for v in cells.values()]
    si = [v for (algo, *__), cells in rows.items() if algo == "SI"
          for v in cells.values()]
    assert sum(mi) / len(mi) >= sum(si) / len(si)
