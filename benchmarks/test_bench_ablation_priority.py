"""Ablation A1 — scheduling-priority functions (§6 future work).

The thesis computes SP as the number of child operations and notes that
other priority functions change which path is identified as critical.
This bench runs the MI flow with SP ∈ {children, mobility, depth} and
reports the reduction each achieves — all three should land in the same
band (the algorithm is robust to SP), with no function catastrophically
behind.
"""

from repro.config import ExplorationParams, ISEConstraints
from repro.core.flow import ISEDesignFlow
from repro.sched import MachineConfig
from repro.workloads import get_workload

from conftest import run_once

WORKLOADS = ("crc32", "bitcount", "adpcm")
PRIORITIES = ("children", "mobility", "depth")


def _reduction(priority):
    machine = MachineConfig(2, "4/2")
    params = ExplorationParams(max_iterations=60, restarts=1, max_rounds=6)
    values = []
    for name in WORKLOADS:
        program, args = get_workload(name).build()
        flow = ISEDesignFlow(machine, params=params, seed=7,
                             priority=priority, max_blocks=4)
        report = flow.run(program, args=args, opt_level="O3",
                          constraints=ISEConstraints(max_area=80_000))
        values.append(100.0 * report.reduction)
    return sum(values) / len(values)


def test_bench_ablation_priority(benchmark):
    results = run_once(
        benchmark,
        lambda: {p: _reduction(p) for p in PRIORITIES})
    print()
    print("A1: avg reduction (crc32+bitcount+adpcm, 4/2 2IS O3) per SP")
    for priority in PRIORITIES:
        print("  SP={:10s} {:6.2f}%".format(priority, results[priority]))
    values = list(results.values())
    assert all(v > 0.0 for v in values)
    # Robustness: no priority function collapses the result.
    assert min(values) >= 0.5 * max(values)
