"""Lockstep ant-batch benchmark: batched goldens and serial speedup.

Runs the reference workload set (same hot blocks, parameters and seed
as ``test_bench_sched.py``) at ``batch=1``, ``batch=4`` and the default
``batch=16`` and asserts three bit-parity contracts, all hard:

* ``batch=1`` reproduces ``test_bench_sched.py``'s scalar golden
  digest — the ``REPRO_ANT_BATCH=1`` escape hatch is bit-identical to
  the pre-batching engine;
* ``batch=4`` and ``batch=16`` reproduce the **batched** golden
  digests pinned below.  The lockstep scheme draws the per-ant streams
  in (step, ant) order against a per-batch frozen trail/merit state,
  so any width above 1 is a different — but equally pinned — RNG
  lineage (regeneration procedure: docs/PARAMETERS.md).

Timings land in ``BENCH_batch.json``: iterations/s per batch size and
``speedup_vs_scalar`` — the default width's rate over the ``batch=1``
rate measured in the same session (i.e. over the ``BENCH_sched``
scalar baseline engine).  Each width gets a warm-up run before
``REPEATS`` timed runs because the ratio of two wall-clocks is noise
squared.  The ≥2.5× speedup gate follows the repo convention for
wall-clock assertions: asserted when ``REPRO_BENCH_STRICT=1``
(reference hosts) and recorded otherwise — parity stays hard
everywhere.
"""

import hashlib
import json
import os
import time

from repro.config import ExplorationParams
from repro.core.batch import DEFAULT_BATCH
from repro.core.exploration import MultiIssueExplorer
from repro.sched.machine import MachineConfig

from conftest import run_once
from test_bench_sched import (
    BASELINE_ITERS_PER_S,
    GOLDEN_DIGEST,
    _hot_dfgs,
    _signature,
    _summary,
)

BATCH_SIZES = (1, 4, DEFAULT_BATCH)
REPEATS = 4
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_batch.json")

#: sha256 over ``repr([_signature(r) for r in results])`` of the
#: lockstep engine on the golden workload set (seed lineage of the
#: batched draw scheme; the scalar lineage stays in test_bench_sched).
BATCHED_GOLDEN_DIGESTS = {
    1: GOLDEN_DIGEST,
    4: "8bb558d8ea2f48f2791c70ad1d2c42bd45b6b6cb53481945916b560ffd9b4995",
    16: "54af708d1bdec44fac6413102c9d683a14cd70f227bcf09854131b16379b7812",
}

#: Convenience alias for the default width's digest (asserted by the
#: pool bench, which runs the engine as shipped).
BATCHED_GOLDEN_DIGEST = BATCHED_GOLDEN_DIGESTS[DEFAULT_BATCH]

#: Readable per-block expectations at the default width: (function,
#: label, base cycles, final cycles, rounds, iterations, candidate
#: sizes).
BATCHED_GOLDEN_BLOCKS = [
    ("crc32", "bit_loop", 16, 4, 4, 278, [20, 3]),
    ("crc32", "byte_loop", 3, 3, 2, 96, []),
    ("bitcount", "kern_body", 2, 1, 3, 90, [2]),
    ("bitcount", "word_loop", 29, 14, 6, 480, [10, 4, 4, 3, 3]),
    ("adpcm_encode", "index_update", 6, 3, 4, 58, [3, 2]),
    ("adpcm_encode", "sample_loop", 5, 4, 3, 229, [2]),
]


def test_bench_batch_speedup(benchmark):
    dfgs = _hot_dfgs()
    params = ExplorationParams(max_iterations=80, restarts=4, max_rounds=6)

    def explore_at(batch):
        explorer = MultiIssueExplorer(MachineConfig(2, "4/2"),
                                      params=params, seed=17, batch=batch)
        start = time.perf_counter()
        results = explorer.explore_many(dfgs, jobs=1)
        return results, time.perf_counter() - start

    def measure():
        best = {}
        for batch in BATCH_SIZES:
            explore_at(batch)                      # warm-up, untimed
        for __ in range(REPEATS):
            # Interleaved so host throttling drifts hit every width
            # equally rather than biasing the speedup ratio.
            for batch in BATCH_SIZES:
                results, seconds = explore_at(batch)
                if batch not in best or seconds < best[batch][1]:
                    best[batch] = (results, seconds)
        return best

    best = run_once(benchmark, measure)

    # Hard contract: every width reproduces its pinned golden lineage.
    rates = {}
    for batch in BATCH_SIZES:
        results, seconds = best[batch]
        sigs = [_signature(r) for r in results]
        digest = hashlib.sha256(repr(sigs).encode()).hexdigest()
        assert digest == BATCHED_GOLDEN_DIGESTS[batch], \
            "parity broken at batch={}".format(batch)
        rates[batch] = sum(r.iterations for r in results) / seconds
    for result, expected in zip(best[DEFAULT_BATCH][0],
                                BATCHED_GOLDEN_BLOCKS):
        assert _summary(result) == list(expected)

    speedup = rates[DEFAULT_BATCH] / rates[1]
    payload = {
        "workloads": ["crc32", "bitcount", "adpcm"],
        "blocks": len(dfgs),
        "cpus": os.cpu_count(),
        "default_batch": DEFAULT_BATCH,
        "repeats": REPEATS,
        "batches": {
            str(batch): {
                "iterations": sum(r.iterations for r in best[batch][0]),
                "seconds": round(best[batch][1], 3),
                "iters_per_s": round(rates[batch], 1),
                "golden_digest": BATCHED_GOLDEN_DIGESTS[batch],
            }
            for batch in BATCH_SIZES
        },
        "scalar_baseline_iters_per_s": round(rates[1], 1),
        "speedup_vs_scalar": round(speedup, 3),
        "speedup_vs_sched_baseline": round(
            rates[DEFAULT_BATCH] / BASELINE_ITERS_PER_S, 3),
    }
    with open(OUT_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print("batch: " + " | ".join(
        "B={} {:.1f} it/s".format(batch, rates[batch])
        for batch in BATCH_SIZES)
        + " | {:.2f}x scalar at default".format(speedup))

    assert all(seconds > 0 for __, seconds in best.values())
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        # Reference-host gate: the default lockstep width must clear
        # 2.5x the scalar engine's serial throughput.
        assert speedup >= 2.5
