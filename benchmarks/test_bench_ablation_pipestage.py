"""Ablation A6 — the pipestage timing constraint.

The related work (§3.1) constrains ISEs to fit the pipeline stage
(single-cycle ASFUs); the thesis evaluates multi-cycle ISEs.  This
bench quantifies what the relaxation buys: the same flow run with
``max_ise_cycles = 1`` vs unbounded on the chain-heavy workloads.
Multi-cycle ISEs should win on the long-chain kernels (they can swallow
whole dependence chains), while single-cycle ISEs save area.
"""

from repro.config import ExplorationParams, ISEConstraints
from repro.core.flow import ISEDesignFlow
from repro.sched import MachineConfig
from repro.workloads import get_workload

from conftest import run_once

WORKLOADS = ("crc32", "bitcount", "adpcm")


def _run(limit):
    machine = MachineConfig(2, "4/2")
    params = ExplorationParams(max_iterations=80, restarts=1,
                               max_rounds=8)
    explore_constraints = ISEConstraints(max_ise_cycles=limit)
    reductions, areas = [], []
    for name in WORKLOADS:
        program, args = get_workload(name).build()
        flow = ISEDesignFlow(machine, params=params, seed=7,
                             max_blocks=4,
                             constraints=explore_constraints)
        report = flow.run(
            program, args=args, opt_level="O3",
            constraints=ISEConstraints(max_ise_cycles=limit,
                                       max_area=80_000))
        reductions.append(100.0 * report.reduction)
        areas.append(report.area)
    return (sum(reductions) / len(reductions),
            sum(areas) / len(areas))


def test_bench_ablation_pipestage(benchmark):
    results = run_once(benchmark, lambda: {
        "single-cycle (pipestage)": _run(1),
        "two-cycle": _run(2),
        "unbounded (thesis)": _run(None),
    })
    print()
    print("A6: pipestage timing constraint "
          "(crc32+bitcount+adpcm, 4/2 2IS O3)")
    for name, (red, area) in results.items():
        print("  {:26s} {:6.2f}%  {:8.0f} um2".format(name, red, area))
    single = results["single-cycle (pipestage)"][0]
    unbounded = results["unbounded (thesis)"][0]
    # Multi-cycle ISEs never lose to pipestage-limited ones, and on
    # these chain kernels they win outright.
    assert unbounded >= single - 0.5
    assert all(red > 0 for red, __ in results.values())
