"""§5.2's compiler-optimisation observation, as its own experiment.

The thesis explains the O0/O3 columns of Fig. 5.2.1: at 2-issue, -O3's
unrolling enlarges basic blocks and therefore the ISE search space, so
O3 shows more reduction than O0; at wider issue the ILP exposed by -O3
is absorbed by the ALUs, so the O3-over-O0 advantage shrinks.  This
bench isolates exactly that comparison for the MI explorer.
"""

from repro.config import ISEConstraints
from repro.eval import machine_for_case

from conftest import run_once

BUDGET = 320_000


def test_bench_opt_levels(benchmark, ctx):
    def run():
        rows = {}
        for ports, issue in (("4/2", 2), ("8/4", 4)):
            machine = machine_for_case(ports, issue)
            constraints = ISEConstraints(max_area=BUDGET)
            o0 = ctx.average_reduction(machine, "O0", "MI", constraints)
            o3 = ctx.average_reduction(machine, "O3", "MI", constraints)
            rows[(ports, issue)] = (o0, o3)
        return rows

    rows = run_once(benchmark, run)
    print()
    print("O0 vs O3 (MI, area <= {} um2)".format(BUDGET))
    for (ports, issue), (o0, o3) in rows.items():
        print("  ({}, {}IS): O0 {:6.2f}%  O3 {:6.2f}%  gap {:+5.2f}".format(
            ports, issue, o0, o3, o3 - o0))
    narrow_gap = rows[("4/2", 2)][1] - rows[("4/2", 2)][0]
    wide_gap = rows[("8/4", 4)][1] - rows[("8/4", 4)][0]
    # O3 beats O0 at 2-issue (bigger blocks, bigger search space).
    assert narrow_gap > 0.0
    # The advantage does not grow with issue width (§5.2's narrowing).
    assert wide_gap <= narrow_gap + 1.0
