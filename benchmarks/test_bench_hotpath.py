"""Hot-path benchmark: serial vs process-parallel exploration.

Times :meth:`MultiIssueExplorer.explore_many` over the hot blocks of
three workloads with ``jobs=1`` and ``jobs=4`` and writes
``BENCH_hotpath.json`` (serial_s, parallel_s, speedup, per-iteration
throughput) at the repository root.  Parity is a *hard* assertion —
the pooled run must reproduce the serial results bit-for-bit; the
speedup itself is asserted only when the host actually has the CPUs
(pools cannot beat serial on a one-core container), but is always
recorded so CI artifacts track the trend.
"""

import json
import os
import time

from repro.config import ExplorationParams
from repro.core.exploration import MultiIssueExplorer
from repro.core.flow import ISEDesignFlow
from repro.ir.passes.pipeline import optimize
from repro.sched.machine import MachineConfig
from repro.workloads import get_workload

from conftest import jobs_environment, run_once

WORKLOADS = ("crc32", "bitcount", "adpcm")
JOBS = 4
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_hotpath.json")


def _hot_dfgs():
    """Hot explorable blocks of the benchmark workloads at -O3."""
    machine = MachineConfig(2, "4/2")
    dfgs = []
    for name in WORKLOADS:
        program, args = get_workload(name).build()
        flow = ISEDesignFlow(machine, seed=3, max_blocks=2)
        blocks = flow.profile_blocks(optimize(program, "O3"), args=args)
        dfgs.extend(b.dfg for b in flow._select_hot_blocks(blocks))
    return dfgs


def _signature(result):
    return (result.final_cycles, result.base_cycles, result.rounds,
            result.iterations, tuple(map(tuple, result.traces)),
            tuple(tuple(sorted(c.members)) for c in result.candidates))


def test_bench_hotpath_parallel(benchmark):
    dfgs = _hot_dfgs()
    params = ExplorationParams(max_iterations=80, restarts=JOBS,
                               max_rounds=6)
    explorer = MultiIssueExplorer(MachineConfig(2, "4/2"), params=params,
                                  seed=17)

    def measure():
        start = time.perf_counter()
        serial = explorer.explore_many(dfgs, jobs=1)
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        pooled = explorer.explore_many(dfgs, jobs=JOBS)
        parallel_s = time.perf_counter() - start
        return serial, serial_s, pooled, parallel_s

    serial, serial_s, pooled, parallel_s = run_once(benchmark, measure)

    # Hard contract: the pool is observationally invisible.
    assert [_signature(r) for r in serial] == [_signature(r) for r in pooled]

    iterations = sum(r.iterations for r in serial)
    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    payload = {
        "workloads": list(WORKLOADS),
        "blocks": len(dfgs),
        "jobs": jobs_environment(JOBS),
        "iterations": iterations,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "serial_iters_per_s": round(iterations / serial_s, 1),
    }
    with open(OUT_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print("hotpath: {} iters | serial {:.2f}s | jobs={} {:.2f}s | "
          "speedup {:.2f}x on {} cpu(s)".format(
              iterations, serial_s, JOBS, parallel_s, speedup,
              os.cpu_count()))

    assert serial_s > 0 and parallel_s > 0
    if (os.cpu_count() or 1) >= JOBS:
        # With the CPUs available the (block, restart) fan-out must pay.
        assert speedup >= 2.0
