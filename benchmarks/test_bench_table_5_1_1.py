"""Table 5.1.1 — hardware implementation option settings.

Regenerates (prints) the table from the hardware database and checks
the transcription invariants the rest of the evaluation relies on:
faster design points cost more area within each opcode group, and the
multiplier is by far the largest unit.
"""

from repro.hwlib import DEFAULT_DATABASE
from repro.eval import render_table_5_1_1

from conftest import run_once


def test_bench_table_5_1_1(benchmark):
    def regenerate():
        table = render_table_5_1_1(DEFAULT_DATABASE)
        rows = list(DEFAULT_DATABASE.rows())
        return table, rows

    table, rows = run_once(benchmark, regenerate)
    print()
    print(table)
    assert len(rows) == 11
    for group, points in rows:
        ordered = sorted(points)                       # by delay
        areas = [area for __, area in ordered]
        # Faster implementations never come cheaper (Pareto points).
        assert areas == sorted(areas, reverse=True), group
    mult_area = DEFAULT_DATABASE.design_points("mult")[0][1]
    assert all(area <= mult_area
               for __, points in rows for ___, area in points)
