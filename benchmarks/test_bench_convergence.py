"""Ablation A4 — ACO convergence behaviour.

The algorithm's premise (§2.2, §3) is that the ant colony converges:
iteration-over-iteration, the constructed schedules' execution times
concentrate toward the best found.  This bench records the per-
iteration TET trace of the first round on the CRC32 hot block and
checks that the late phase of the search is no worse than the early
phase, and that the best schedule appears well before the iteration
budget (the point of the trail/merit feedback).
"""

from repro.config import ExplorationParams
from repro.core import MultiIssueExplorer
from repro.graph import build_dfg
from repro.ir.analysis import liveness
from repro.ir.passes import optimize
from repro.sched import MachineConfig
from repro.workloads import get_workload

from conftest import run_once


def _hot_dfg():
    program, args = get_workload("crc32").build()
    del args
    program = optimize(program, "O3")
    func = program.main
    __, live_out = liveness(func)
    return build_dfg(func.block("bit_loop"), live_out["bit_loop"],
                     function=func.name)


def test_bench_convergence(benchmark):
    def run():
        dfg = _hot_dfg()
        params = ExplorationParams(max_iterations=200, restarts=1,
                                   max_rounds=1)
        explorer = MultiIssueExplorer(MachineConfig(2, "4/2"),
                                      params=params, seed=11)
        result = explorer.explore(dfg)
        return result.traces[0]

    trace = run_once(benchmark, run)
    assert len(trace) >= 20
    head = trace[: len(trace) // 5]
    tail = trace[-len(trace) // 5:]
    head_avg = sum(head) / len(head)
    tail_avg = sum(tail) / len(tail)
    best = min(trace)
    first_best = trace.index(best) + 1
    print()
    print("A4: ACO convergence on crc32 bit_loop (one round)")
    print("  iterations: {}   first 20% avg TET: {:.2f}   "
          "last 20% avg TET: {:.2f}".format(
              len(trace), head_avg, tail_avg))
    print("  best TET {} first reached at iteration {}/{}".format(
        best, first_best, len(trace)))
    # The paper claims sp-convergence, not monotone TET: the check is
    # that good schedules stay reachable late in the round (the best
    # late-phase construction matches the best early-phase one) and
    # that the optimum was met early enough for the feedback to matter.
    assert min(tail) <= min(head) + 1
    assert first_best <= max(1, int(0.8 * len(trace)))
