"""Ablation A2 — the merit function's locality terms.

The thesis's contribution over [8] is exactly two merit-function terms:
the critical-path boost (case 1) and the Max_AEC slack window (case 4's
off-path branch).  This bench disables them one at a time on the
multi-issue machine and reports area efficiency: with the locality
terms on, the explorer should spend *less area per percent of
reduction* (the terms exist to stop silicon being wasted on
off-critical-path operations).
"""

from repro.config import ExplorationParams, ISEConstraints
from repro.core.flow import ISEDesignFlow
from repro.sched import MachineConfig
from repro.workloads import get_workload

from conftest import run_once

WORKLOADS = ("crc32", "bitcount", "adpcm")

VARIANTS = {
    "full MI": dict(),
    "no CP boost": dict(use_critical_path_boost=False),
    "no slack window": dict(use_slack_window=False),
    "neither (≈[8] merit)": dict(use_critical_path_boost=False,
                                 use_slack_window=False),
}


def _run(overrides):
    machine = MachineConfig(2, "4/2")
    params = ExplorationParams(max_iterations=60, restarts=1,
                               max_rounds=6, **overrides)
    reductions, areas = [], []
    for name in WORKLOADS:
        program, args = get_workload(name).build()
        flow = ISEDesignFlow(machine, params=params, seed=7, max_blocks=4)
        report = flow.run(program, args=args, opt_level="O3",
                          constraints=ISEConstraints(max_ises=4))
        reductions.append(100.0 * report.reduction)
        areas.append(report.area)
    avg_red = sum(reductions) / len(reductions)
    avg_area = sum(areas) / len(areas)
    return avg_red, avg_area


def test_bench_ablation_locality(benchmark):
    results = run_once(
        benchmark, lambda: {k: _run(v) for k, v in VARIANTS.items()})
    print()
    print("A2: merit locality terms (4 ISEs, 4/2 2IS O3, "
          "crc32+bitcount+adpcm)")
    print("  {:24s} {:>10} {:>12} {:>14}".format(
        "variant", "reduction", "area (um2)", "um2 per %"))
    for name, (red, area) in results.items():
        per_pct = area / red if red > 0 else float("inf")
        print("  {:24s} {:>9.2f}% {:>12.0f} {:>14.0f}".format(
            name, red, area, per_pct))
    full_red, full_area = results["full MI"]
    assert full_red > 0.0
    # The full merit function must stay competitive on reduction with
    # every ablated variant.
    for name, (red, __) in results.items():
        assert full_red >= 0.75 * red, name
