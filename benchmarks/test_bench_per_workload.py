"""Per-benchmark breakdown (thesis-style) — MI vs SI on 4/2 2IS O3.

Not a single figure in the paper but the standard per-benchmark view
behind Figs. 5.2.1-5.2.3: one row per MiBench kernel with reduction,
selected ISE count and ASFU area under an 80k µm² budget.  Shape
checks: the chain-dominated kernels (crc32, blowfish) sit above the
branchy ones (adpcm, dijkstra) for both algorithms, and MI never
spends more area than SI for a worse result.
"""

from repro.eval import per_workload_table, render_per_workload

from conftest import run_once


def test_bench_per_workload(benchmark, ctx):
    table = run_once(benchmark, lambda: per_workload_table(ctx))
    print()
    print(render_per_workload(
        table, "Per-benchmark breakdown (4/2, 2IS, O3, area <= 80k um2)"))

    reductions = {name: row["MI"][0] for name, row in table.items()}
    assert all(0.0 <= v < 100.0 for v in reductions.values())
    # The bit-chain kernel is the best case for ISE in the paper too.
    assert reductions["crc32"] >= reductions["adpcm"]
    # Every workload sees some benefit from at least one algorithm.
    for name, row in table.items():
        assert max(row[a][0] for a in row) > 0.0, name
