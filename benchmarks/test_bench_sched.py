"""Scheduling-kernel benchmark: parity against the pre-overhaul engine
and serial throughput of the dense-table + memoized hot path.

The dense reservation table, the incremental readiness bookkeeping and
the evaluation memo are all *exact* transformations, so the overhauled
kernel must reproduce the pre-overhaul engine bit-for-bit: the golden
digest below is the sha256 over the full result signatures (cycle
counts, round/iteration tallies, candidate member sets and convergence
traces) of the reference engine on the hot blocks of three workloads.
Parity — serial and pooled — is a hard assertion.

Throughput is recorded in ``BENCH_sched.json`` together with the
evaluation-cache hit rate.  ``baseline_iters_per_s`` is the 280.4 it/s
the pre-overhaul kernel sustained on the reference container (from the
BENCH_hotpath.json history); ``speedup_vs_baseline`` therefore only
means something on comparable hardware, so the ≥1.3× gate is asserted
when ``REPRO_BENCH_STRICT=1`` (reference-host runs) and recorded
otherwise — container hosts throttle unpredictably and a wall-clock
gate would flake where a parity gate cannot.

This bench deliberately pins ``batch=1``: it *is* the scalar baseline
the lockstep batched engine is measured against.  The batched engine
draws a different RNG stream, carries its own golden digest, and is
benchmarked (against this bench's scalar rate) in
``test_bench_batch.py``.
"""

import hashlib
import json
import os
import time

from repro.config import ExplorationParams
from repro.core.exploration import MultiIssueExplorer
from repro.core.flow import ISEDesignFlow
from repro.ir.passes.pipeline import optimize
from repro.sched.machine import MachineConfig
from repro.workloads import get_workload

from conftest import jobs_environment, run_once

WORKLOADS = ("crc32", "bitcount", "adpcm")
JOBS = 4
REPEATS = 3
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_sched.json")

#: Pre-overhaul serial throughput on the reference container.
BASELINE_ITERS_PER_S = 280.4

#: sha256 over ``repr([_signature(r) for r in results])`` of the
#: reference engine (seed lineage) on the golden workload below.
GOLDEN_DIGEST = \
    "89a8835a173293eb136268e870958b73f30a3fcf870c2141fd38d77dae266908"

#: Readable per-block expectations: (function, label, base cycles,
#: final cycles, rounds, iterations, candidate sizes).
GOLDEN_BLOCKS = [
    ("crc32", "bit_loop", 16, 4, 4, 195, [20, 2]),
    ("crc32", "byte_loop", 3, 3, 2, 48, []),
    ("bitcount", "kern_body", 2, 1, 3, 90, [2]),
    ("bitcount", "word_loop", 29, 16, 6, 480, [10, 3, 3, 4, 4]),
    ("adpcm_encode", "index_update", 6, 3, 4, 25, [3, 2]),
    ("adpcm_encode", "sample_loop", 5, 4, 3, 240, [2]),
]


def _hot_dfgs():
    """Hot explorable blocks of the benchmark workloads at -O3."""
    machine = MachineConfig(2, "4/2")
    dfgs = []
    for name in WORKLOADS:
        program, args = get_workload(name).build()
        flow = ISEDesignFlow(machine, seed=3, max_blocks=2)
        blocks = flow.profile_blocks(optimize(program, "O3"), args=args)
        dfgs.extend(b.dfg for b in flow._select_hot_blocks(blocks))
    return dfgs


def _signature(result):
    return (result.dfg.function, result.dfg.label,
            result.base_cycles, result.final_cycles,
            result.rounds, result.iterations,
            tuple(tuple(sorted(c.members)) for c in result.candidates),
            tuple(map(tuple, result.traces)))


def _summary(result):
    return [result.dfg.function, result.dfg.label,
            result.base_cycles, result.final_cycles,
            result.rounds, result.iterations,
            [len(c.members) for c in result.candidates]]


def test_bench_sched_kernel(benchmark):
    dfgs = _hot_dfgs()
    params = ExplorationParams(max_iterations=80, restarts=4, max_rounds=6)

    def measure():
        runs = []
        for __ in range(REPEATS):
            explorer = MultiIssueExplorer(MachineConfig(2, "4/2"),
                                          params=params, seed=17,
                                          batch=1)
            start = time.perf_counter()
            results = explorer.explore_many(dfgs, jobs=1)
            runs.append((time.perf_counter() - start, results, explorer))
        pooled = runs[-1][2].explore_many(dfgs, jobs=JOBS)
        return runs, pooled

    runs, pooled = run_once(benchmark, measure)
    serial_s, serial, explorer = min(runs, key=lambda r: r[0])

    # Hard contract 1: bit-identical with the pre-overhaul engine.
    for result, expected in zip(serial, GOLDEN_BLOCKS):
        assert _summary(result) == list(expected)
    sigs = [_signature(r) for r in serial]
    assert hashlib.sha256(repr(sigs).encode()).hexdigest() == GOLDEN_DIGEST

    # Hard contract 2: the pool (and the warm memo snapshot it ships to
    # workers) is observationally invisible.
    assert [_signature(r) for r in pooled] == sigs

    hits, misses, entries = (explorer._evalcache.stats()
                             if explorer._evalcache is not None
                             else (0, 0, 0))
    lookups = hits + misses
    iterations = sum(r.iterations for r in serial)
    rate = iterations / serial_s
    payload = {
        "workloads": list(WORKLOADS),
        "blocks": len(dfgs),
        "jobs": jobs_environment(JOBS),
        "iterations": iterations,
        "repeats": REPEATS,
        "serial_s": round(serial_s, 3),
        "serial_iters_per_s": round(rate, 1),
        "baseline_iters_per_s": BASELINE_ITERS_PER_S,
        "speedup_vs_baseline": round(rate / BASELINE_ITERS_PER_S, 3),
        "evalcache": {
            "hits": hits,
            "misses": misses,
            "entries": entries,
            "hit_rate": round(hits / lookups, 3) if lookups else 0.0,
        },
    }
    with open(OUT_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print("sched: {} iters | serial {:.2f}s | {:.1f} it/s "
          "({:.2f}x baseline) | evalcache {}/{} hits".format(
              iterations, serial_s, rate, rate / BASELINE_ITERS_PER_S,
              hits, lookups))

    assert serial_s > 0 and iterations == 1078
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        # Reference-container gate: the overhauled kernel must clear
        # 1.3x the pre-overhaul serial throughput.
        assert rate >= 1.3 * BASELINE_ITERS_PER_S
