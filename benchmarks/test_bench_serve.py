"""Exploration-service benchmark: latency, concurrency, amortization.

One in-process :class:`ExploreServer` on a loopback socket serves every
phase; ``BENCH_serve.json`` records the service overheads the daemon
adds on top of the explorations it multiplexes:

* ``latency``    — round-trip p50/p95 of memo-answered explore
  requests (framing + validation + lane hand-off, no exploration);
* ``throughput`` — memo-answered requests/second at 1, 4 and 16
  concurrent clients hammering one scope;
* ``batching``   — wall-clock for K fresh fingerprints fired in one
  burst (the scope lane batches them into shared dispatches) versus
  the same K run serially through one-shot :func:`repro.api.explore`.

Digest parity between every served result and its one-shot reference
is asserted unconditionally — a fast service that changes answers is
not a service.  Wall-clock gates (batching no slower than 1.5× serial,
nonzero throughput scaling) are asserted only under
``REPRO_BENCH_STRICT=1``.
"""

import json
import os
import statistics
import threading
import time

from repro import api
from repro.serve import schema
from repro.serve.client import ServiceClient
from repro.serve.server import ExploreServer

from conftest import run_once

OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_serve.json")

STRICT = os.environ.get("REPRO_BENCH_STRICT", "").strip() == "1"

EFFORT = dict(profile="quick", iterations=8, restarts=1)
LATENCY_SAMPLES = 60
CLIENT_COUNTS = (1, 4, 16)
REQUESTS_PER_CLIENT = 6
BATCH_SEEDS = tuple(range(300, 308))


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _throughput(address, clients, per_client):
    """Requests/second of ``clients`` hammering one memoized fingerprint."""
    barrier = threading.Barrier(clients + 1)
    errors = []

    def hammer():
        client = ServiceClient(address, timeout=60.0)
        try:
            barrier.wait(timeout=30)
            for __ in range(per_client):
                client.explore("crc32", seed=501, **EFFORT)
        except Exception as error:        # noqa: BLE001 - recorded
            errors.append(error)
        finally:
            client.close()

    threads = [threading.Thread(target=hammer) for __ in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=30)
    start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=120)
    elapsed = time.perf_counter() - start
    assert not errors, errors
    total = clients * per_client
    return total / elapsed if elapsed > 0 else 0.0


def test_bench_serve(benchmark):
    server = ExploreServer(port=0)
    server.start_in_thread()

    def measure():
        phases = {}
        address = server.address

        # Serial one-shot references for the batching phase (and the
        # parity assertions) — timed as the amortization baseline.
        start = time.perf_counter()
        references = {
            seed: schema.explore_payload(
                api.explore("crc32", seed=seed, **EFFORT))
            for seed in BATCH_SEEDS
        }
        phases["serial_oneshot_s"] = time.perf_counter() - start

        # Burst the same fingerprints through one connection: send them
        # all, then collect — queued requests batch on the scope lane.
        client = ServiceClient(address, timeout=120.0)
        try:
            start = time.perf_counter()
            rids = [client.send(dict(EFFORT, op="explore",
                                     workload="crc32", seed=seed))
                    for seed in BATCH_SEEDS]
            served = [client.wait(rid) for rid in rids]
            phases["batched_burst_s"] = time.perf_counter() - start

            # Round-trip latency of memo-answered requests (the first
            # explore above warmed seed 501's slot via throughput runs
            # below; use a batch seed already memoized by the burst).
            samples = []
            for __ in range(LATENCY_SAMPLES):
                start = time.perf_counter()
                client.explore("crc32", seed=BATCH_SEEDS[0], **EFFORT)
                samples.append(time.perf_counter() - start)
        finally:
            client.close()

        # Warm seed 501 once, then measure client-count scaling on the
        # memoized path (pure multiplexing overhead).
        with ServiceClient(address, timeout=120.0) as warmer:
            warmer.explore("crc32", seed=501, **EFFORT)
        throughput = {
            clients: _throughput(address, clients, REQUESTS_PER_CLIENT)
            for clients in CLIENT_COUNTS
        }
        return phases, references, served, samples, throughput

    try:
        phases, references, served, samples, throughput = \
            run_once(benchmark, measure)
        counters = dict(server.counters)
    finally:
        server.stop()

    # Hard contract: every burst answer digests equal to its one-shot.
    for seed, payload in zip(BATCH_SEEDS, served):
        assert schema.explore_digest(payload) \
            == schema.explore_digest(references[seed]), \
            "served seed {} diverged from one-shot".format(seed)

    amortization = phases["serial_oneshot_s"] / phases["batched_burst_s"] \
        if phases["batched_burst_s"] > 0 else 0.0
    payload = {
        "effort": EFFORT,
        "latency_ms": {
            "p50": round(_percentile(samples, 0.50) * 1e3, 3),
            "p95": round(_percentile(samples, 0.95) * 1e3, 3),
            "mean": round(statistics.mean(samples) * 1e3, 3),
            "samples": len(samples),
        },
        "throughput_rps": {
            str(clients): round(rps, 1)
            for clients, rps in throughput.items()
        },
        "requests_per_client": REQUESTS_PER_CLIENT,
        "batching": {
            "fingerprints": len(BATCH_SEEDS),
            "serial_oneshot_s": round(phases["serial_oneshot_s"], 3),
            "batched_burst_s": round(phases["batched_burst_s"], 3),
            "amortization": round(amortization, 3),
        },
        "server_counters": counters,
        "parity": {"burst_vs_oneshot": True},
    }
    with open(OUT_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print("serve bench: p50 {} ms, p95 {} ms, throughput {} rps @16, "
          "amortization {}x".format(
              payload["latency_ms"]["p50"], payload["latency_ms"]["p95"],
              payload["throughput_rps"]["16"], payload["batching"]
              ["amortization"]))

    if STRICT:
        assert amortization >= 1 / 1.5, \
            "batched burst more than 1.5x slower than serial one-shots"
        assert all(rps > 0 for rps in throughput.values())
