"""Figure 1.3.1 — the motivating example.

Schedules the example DFG on single- and 2-issue machines, without ISE
and with ISEs explored for each architecture, and checks the ordering
the figure argues: 2-issue < 1-issue (without ISE), with-ISE < without
(both widths), and ISEs explored *for* the 2-issue machine beat the
single-issue ISE choice when both run on the 2-issue machine (§1.4's
case-1 vs case-2 comparison).
"""

from repro import ExplorationParams, MachineConfig
from repro.core import MultiIssueExplorer
from repro.graph import build_dfg
from repro.hwlib import DEFAULT_TECHNOLOGY
from repro.ir import FunctionBuilder
from repro.ir.analysis import liveness
from repro.sched import contract_dfg, list_schedule

from conftest import run_once


def example_dfg():
    b = FunctionBuilder("example", params=("a", "b", "c", "d"))
    b.label("bb")
    t1 = b.xor("a", "b")
    t2 = b.and_("a", "c")
    t3 = b.or_("b", "c")
    t4 = b.addu(t1, "d")
    t5 = b.subu(t3, "c")
    t6 = b.addu(t4, t2)
    t7 = b.xor(t4, "a")
    t8 = b.addu(t6, t7)
    t9 = b.or_(t8, t5)
    b.ret(t9)
    func = b.finish()
    __, live_out = liveness(func)
    return build_dfg(func.block("bb"), live_out["bb"], function="example")


def _schedule(dfg, machine, candidates=()):
    groups = [(c.members, c.option_of) for c in candidates]
    graph, units = contract_dfg(dfg, groups, DEFAULT_TECHNOLOGY)
    return list_schedule(graph, units, machine).makespan


def test_bench_fig_1_3_1(benchmark):
    def regenerate():
        dfg = example_dfg()
        single = MachineConfig(1, "4/2")
        dual = MachineConfig(2, "4/2")
        params = ExplorationParams(max_iterations=150, restarts=3)
        ise_1 = MultiIssueExplorer(single, params=params, seed=7).explore(dfg)
        ise_2 = MultiIssueExplorer(dual, params=params, seed=7).explore(dfg)
        return {
            "single/no-ise": _schedule(dfg, single),
            "dual/no-ise": _schedule(dfg, dual),
            "single/ise1": _schedule(dfg, single, ise_1.candidates),
            "dual/ise1": _schedule(dfg, dual, ise_1.candidates),   # case 1
            "dual/ise2": _schedule(dfg, dual, ise_2.candidates),   # case 2
            "area1": sum(c.area for c in ise_1.candidates),
            "area2": sum(c.area for c in ise_2.candidates),
        }

    cells = run_once(benchmark, regenerate)
    print()
    print("Fig 1.3.1: execution cycles of the motivating example")
    for key in ("single/no-ise", "dual/no-ise", "single/ise1",
                "dual/ise1", "dual/ise2"):
        print("  {:16s} {} cycles".format(key, cells[key]))
    print("  ISE area: single-issue choice {:.0f} um2, "
          "2-issue choice {:.0f} um2".format(cells["area1"], cells["area2"]))
    # The figure's ordering claims.
    assert cells["dual/no-ise"] < cells["single/no-ise"]
    assert cells["single/ise1"] < cells["single/no-ise"]
    assert cells["dual/ise2"] < cells["dual/no-ise"]
    # Case 2 (explore for the 2-issue machine) is at least as good as
    # case 1 (reuse the single-issue choice) — the paper's key argument.
    assert cells["dual/ise2"] <= cells["dual/ise1"]
