"""Figure 5.2.3 — silicon-area cost vs execution-time reduction.

For the 2-issue 4/2 machine at -O3, sweeps the ISE-count budget and
plots, per algorithm, the selected-ASFU area against the achieved
reduction.  Shape checks: area grows with the budget while reduction
saturates (the figure's diminishing-returns story), i.e. the
area-per-percent cost of the last ISEs far exceeds that of the first.
"""

from repro.eval import ISE_COUNTS, figure_5_2_3, render_area_vs_reduction

from conftest import run_once


def test_bench_fig_5_2_3(benchmark, ctx):
    series = run_once(benchmark, lambda: figure_5_2_3(ctx))
    print()
    print(render_area_vs_reduction(
        series, "Fig 5.2.3: area cost vs execution-time reduction "
        "(4/2, 2IS, O3)"))

    for algo, points in series.items():
        areas = [a for __, a, ___ in points]
        reductions = [r for __, ___, r in points]
        assert all(b >= a - 1e-6 for a, b in zip(areas, areas[1:])), algo
        assert all(b >= a - 2.0
                   for a, b in zip(reductions, reductions[1:])), algo
        # First ISE dominates: >= half the final reduction at one ISE.
        assert reductions[0] >= 0.5 * reductions[-1], algo

    counts = [n for n, __, ___ in series["MI"]]
    assert counts == sorted(ISE_COUNTS)
