"""Figure 5.2.1 — execution-time reduction under silicon-area budgets.

Regenerates the figure's full grid: MI and SI explorers × the six
machine cases × {-O0, -O3}, each swept over area budgets of 20k-320k
µm², averaged over the seven benchmarks.  Shape checks: reductions are
monotone in the budget, and MI is at least as good as SI on average.
"""

from repro.eval import AREA_BUDGETS, figure_5_2_1, render_stacked_figure

from conftest import run_once


def test_bench_fig_5_2_1(benchmark, ctx):
    rows = run_once(benchmark, lambda: figure_5_2_1(ctx))
    print()
    print(render_stacked_figure(
        rows, "A=", "Fig 5.2.1: avg execution-time reduction (%) "
        "vs silicon-area budget (um2)"))

    for column, cells in rows.items():
        values = [cells[b] for b in AREA_BUDGETS]
        # More area should not hurt.  Greedy selection + replacement
        # overlap resolution can backslide slightly, so allow a small
        # tolerance rather than strict monotonicity.
        assert all(b >= a - 2.0 for a, b in zip(values, values[1:])), column
        assert all(0.0 <= v < 100.0 for v in values), column

    # MI >= SI on the grand average (the paper's central claim).
    mi = [v for (algo, *__), cells in rows.items() if algo == "MI"
          for v in cells.values()]
    si = [v for (algo, *__), cells in rows.items() if algo == "SI"
          for v in cells.values()]
    assert sum(mi) / len(mi) >= sum(si) / len(si)
