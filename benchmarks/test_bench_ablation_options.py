"""Ablation A7 — design-point choice (criterion 3/4 of the merit
function).

§4.3's case 4 says: on the critical path take the fastest design point;
off it, take the *cheapest* whose latency still fits the Max_AEC slack
window.  This bench measures the explorers' design-point mix (fraction
of members realized with the fastest point of their opcode) with the
slack window on and off, on a workload whose blocks have real slack
(fft) — the window should push the mix away from all-fastest.
"""

from repro.config import ExplorationParams, ISEConstraints
from repro.core.flow import ISEDesignFlow
from repro.eval.stats import stats_of
from repro.sched import MachineConfig
from repro.workloads import get_workload

from conftest import run_once

WORKLOADS = ("fft", "jpeg")


def _mix(use_slack):
    machine = MachineConfig(2, "4/2")
    params = ExplorationParams(max_iterations=80, restarts=1,
                               max_rounds=8, use_slack_window=use_slack)
    fractions, areas = [], []
    for name in WORKLOADS:
        program, args = get_workload(name).build()
        flow = ISEDesignFlow(machine, params=params, seed=7, max_blocks=3)
        explored = flow.explore_application(program, args=args,
                                            opt_level="O3")
        stats = stats_of(explored)
        if stats.count:
            fractions.append(stats.fast_option_fraction())
            areas.append(stats.total_area())
    mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
    return mean(fractions), mean(areas)


def test_bench_ablation_options(benchmark):
    results = run_once(benchmark, lambda: {
        "slack window on (thesis)": _mix(True),
        "slack window off": _mix(False),
    })
    print()
    print("A7: design-point mix (fft+jpeg, 4/2 2IS O3)")
    for name, (fraction, area) in results.items():
        print("  {:26s} fastest-point fraction {:5.1%}   "
              "candidate area {:8.0f} um2".format(name, fraction, area))
    on_frac, __ = results["slack window on (thesis)"]
    off_frac, ___ = results["slack window off"]
    # With the slack window, the explorer is never *more* speed-greedy
    # than without it (cheap options get picked off the critical path).
    assert on_frac <= off_frac + 0.05
    assert 0.0 <= on_frac <= 1.0
