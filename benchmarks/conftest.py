"""Shared fixtures for the benchmark/experiment harness.

One :class:`~repro.eval.runner.EvalContext` is shared across every
bench in the session, so the expensive ACO explorations run once and
all three figures (plus the headlines) reuse them.  The effort profile
comes from ``REPRO_EVAL_PROFILE`` (default ``quick``; set ``full`` for
the paper's §5.1 settings).
"""

import os

import pytest

from repro.core.parallel import resolve_jobs
from repro.eval import EvalContext


@pytest.fixture(scope="session")
def ctx():
    """Full-suite context (all seven workloads)."""
    return EvalContext(seed=7)


@pytest.fixture(scope="session")
def small_ctx():
    """Reduced context for the ablation benches (three workloads)."""
    return EvalContext(seed=7, workload_names=["crc32", "adpcm", "bitcount"])


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def jobs_environment(requested):
    """Parallelism fields every ``BENCH_*.json`` payload must carry.

    A scaling run is unreadable without all three: what was asked for
    (``jobs_requested``), what the clamp actually granted
    (``jobs_effective``) and the host it was granted on (``cpus``).
    """
    return {
        "cpus": os.cpu_count(),
        "jobs_requested": requested,
        "jobs_effective": resolve_jobs(requested),
    }
