"""Ablation A3 — ACO parameter sensitivity (α, P_END, evaporation).

§5.1 discusses the trade-offs: a large α (trail-dominated) converges
slowly, a small α converges fast to poorer solutions; a larger P_END
buys quality with iterations.  This bench sweeps α and P_END on one
block-rich workload and reports reduction and iteration counts, so the
claimed trends are visible.
"""

from repro.config import ExplorationParams
from repro.core import MultiIssueExplorer
from repro.graph import build_dfg
from repro.ir.analysis import liveness
from repro.ir.passes import optimize
from repro.sched import MachineConfig
from repro.workloads import get_workload

from conftest import run_once


def _hot_dfg():
    program, args = get_workload("crc32").build()
    program = optimize(program, "O3")
    func = program.main
    __, live_out = liveness(func)
    block = func.block("bit_loop")
    return build_dfg(block, live_out["bit_loop"], function=func.name)


def _explore(dfg, **overrides):
    machine = MachineConfig(2, "4/2")
    params = ExplorationParams(max_iterations=250, restarts=1,
                               max_rounds=4, **overrides)
    explorer = MultiIssueExplorer(machine, params=params, seed=7)
    result = explorer.explore(dfg)
    saving = result.base_cycles - result.final_cycles
    return saving, result.iterations


def test_bench_ablation_params(benchmark):
    def sweep():
        dfg = _hot_dfg()
        grid = {}
        for alpha in (0.1, 0.25, 0.5):
            grid[("alpha", alpha)] = _explore(dfg, alpha=alpha)
        for p_end in (0.9, 0.99):
            grid[("p_end", p_end)] = _explore(dfg, p_end=p_end)
        return grid

    grid = run_once(benchmark, sweep)
    print()
    print("A3: ACO parameter sensitivity on crc32 bit_loop (O3)")
    print("  {:16s} {:>14} {:>12}".format(
        "parameter", "cycle saving", "iterations"))
    for key in sorted(grid):
        saving, iters = grid[key]
        print("  {:16s} {:>14} {:>12}".format(
            "{}={}".format(*key), saving, iters))
    # Every configuration must find a beneficial ISE on this block.
    assert all(saving > 0 for saving, __ in grid.values())
    # A lower P_END never needs more iterations than a higher one.
    assert grid[("p_end", 0.9)][1] <= grid[("p_end", 0.99)][1]
