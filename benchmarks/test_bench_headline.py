"""Abstract headlines H1 and H2 — paper vs measured.

H1: with exactly one ISE, the proposed design reduces execution time by
17.17 / 12.9 / 14.79 % (max / min / avg over the §5.1 cases) relative
to the same multi-issue machine without ISEs.

H2: under equal area budgets, MI delivers 11.39 / 2.87 / 7.16 % more
reduction than the single-issue baseline [8].

The absolute numbers come from gcc 2.7.2.3 + the authors' benchmarks;
this reproduction checks the *shape*: a clearly double-digit average
single-ISE reduction for H1, and a non-negative average MI-over-SI gap
for H2.
"""

from repro.eval import headline_single_ise, headline_vs_baseline, \
    render_headline

from conftest import run_once

PAPER_H1 = (17.17, 12.9, 14.79)
PAPER_H2 = (11.39, 2.87, 7.16)


def test_bench_headline_single_ise(benchmark, ctx):
    (measured, per_case) = run_once(
        benchmark, lambda: headline_single_ise(ctx))
    print()
    print(render_headline(
        "H1: one ISE vs no ISE (max/min/avg over cases)",
        PAPER_H1, measured, per_case))
    maximum, minimum, average = measured
    assert maximum >= minimum
    # Shape: a single ISE buys a double-digit average reduction.
    assert average >= 8.0
    assert minimum >= 0.0


def test_bench_headline_vs_baseline(benchmark, ctx):
    (measured, per_case) = run_once(
        benchmark, lambda: headline_vs_baseline(ctx))
    print()
    print(render_headline(
        "H2: MI minus SI under equal area budgets (max/min/avg)",
        PAPER_H2, measured, per_case))
    maximum, minimum, average = measured
    assert maximum >= minimum
    # Shape: on average the multi-issue-aware explorer wins.
    assert average >= 0.0
    assert maximum > 0.0
