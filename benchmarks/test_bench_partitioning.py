"""Extension bench — §6's HW/SW partitioning on the same engine.

The thesis's future-work section claims the algorithm transfers to the
combined hardware-software partitioning / design-space exploration /
scheduling problem "by a slight modification".  This bench runs that
modification (`repro.ext.partition`) on an SDR receiver task graph
across area budgets and checks the expected co-design shape: speedup
grows monotonically with the hardware budget and saturates.
"""

from repro.ext import TaskGraph, partition

from conftest import run_once


def receiver():
    tg = TaskGraph("sdr-receiver")
    tg.add_task("adc_read", 3)
    tg.add_task("ddc", 12, hw_bins=[(4.0, 1200.0), (2.0, 2600.0)],
                deps=["adc_read"])
    tg.add_task("fir_i", 8, hw_bins=[(2.0, 800.0)], deps=["ddc"])
    tg.add_task("fir_q", 8, hw_bins=[(2.0, 800.0)], deps=["ddc"])
    tg.add_task("agc", 4, hw_bins=[(1.0, 300.0)], deps=["fir_i", "fir_q"])
    tg.add_task("demod", 14, hw_bins=[(5.0, 1500.0), (3.0, 3100.0)],
                deps=["agc"])
    tg.add_task("sync", 6, hw_bins=[(2.0, 500.0)], deps=["demod"])
    tg.add_task("fec", 16, hw_bins=[(6.0, 2200.0)], deps=["sync"])
    tg.add_task("crc", 5, hw_bins=[(1.0, 350.0)], deps=["fec"])
    tg.add_task("to_mac", 2, deps=["crc"])
    return tg


BUDGETS = (0.0, 1500.0, 4000.0, 8000.0, None)


def test_bench_partitioning(benchmark):
    def run():
        rows = []
        for budget in BUDGETS:
            result = partition(receiver(), processors=1, hw_slots=1,
                               max_area=budget, seed=9)
            rows.append((budget, result))
        return rows

    rows = run_once(benchmark, run)
    print()
    print("Extension: HW/SW partitioning of an SDR receiver")
    print("  {:>10} {:>10} {:>8} {:>10}  blocks".format(
        "budget", "makespan", "speedup", "area"))
    for budget, result in rows:
        label = "inf" if budget is None else "{:.0f}".format(budget)
        blocks = "; ".join("+".join(b) for b in result.hardware_blocks()) \
            or "-"
        print("  {:>10} {:>10} {:>8.2f} {:>10.0f}  {}".format(
            label, result.makespan_partitioned, result.speedup,
            result.hardware_area, blocks))
    speedups = [result.speedup for __, result in rows]
    areas = [result.hardware_area for __, result in rows]
    # Monotone in the budget; zero budget = all software.
    assert speedups[0] == 1.0
    assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
    for (budget, result) in rows:
        if budget is not None:
            assert result.hardware_area <= budget
    # With unlimited area, hardware buys a real speedup.
    assert speedups[-1] > 1.5
    assert areas[-1] > 0
