"""Observability overhead guard: the disabled path must be ≤ 2%.

Direct A/B timing of "engine with hooks" vs "engine without hooks" is
impossible in-tree (the unhooked engine no longer exists) and flaky
anyway, so the guard is structural: time a serial exploration with the
default :data:`~repro.obs.NULL_OBSERVER`, count how many hook sites it
actually crossed (by re-running with a recording observer), then
micro-benchmark the cost of one disabled hook (`if obs:` on a falsy
observer).  The product — hooks crossed × cost per disabled hook — is
the *entire* overhead the observability layer adds to an unobserved
run, and it must stay under 2% of the exploration's wall-clock.

Writes ``BENCH_obs.json`` (hook counts, per-hook cost, overhead share)
at the repository root for CI artifact tracking.
"""

import json
import os
import time
import timeit

from repro.config import ExplorationParams
from repro.core.exploration import MultiIssueExplorer
from repro.core.flow import ISEDesignFlow
from repro.ir.passes.pipeline import optimize
from repro.obs import NULL_OBSERVER, Observer
from repro.sched.machine import MachineConfig
from repro.workloads import get_workload

from conftest import jobs_environment, run_once

WORKLOADS = ("crc32", "bitcount", "adpcm")
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_obs.json")
MAX_OVERHEAD = 0.02


class _CountingSink:
    """Tallies delivered events without retaining them."""

    def __init__(self):
        self.events = 0

    def handle(self, event):
        self.events += 1

    def close(self):
        pass


def _hot_dfgs():
    machine = MachineConfig(2, "4/2")
    dfgs = []
    for name in WORKLOADS:
        program, args = get_workload(name).build()
        flow = ISEDesignFlow(machine, seed=3, max_blocks=2)
        blocks = flow.profile_blocks(optimize(program, "O3"), args=args)
        dfgs.extend(b.dfg for b in flow._select_hot_blocks(blocks))
    return dfgs


def _hook_crossings(observer):
    """Hook-site crossings of one fully observed run.

    Every ``if obs:`` guard in the engine fronts one event emission
    plus a handful of counter updates; counting delivered events,
    counter updates and timer spans of an *enabled* run therefore
    bounds the number of guard evaluations of the disabled run from
    above (the disabled run evaluates exactly the same guards).
    """
    metrics = observer.metrics
    events = sum(sink.events for sink in observer.sinks)
    counter_updates = len(metrics.counters)
    timer_spans = sum(entry[0] for entry in metrics.timers.values())
    gauges = len(metrics.gauges)
    return events + counter_updates + timer_spans + gauges


def test_bench_obs_overhead(benchmark):
    dfgs = _hot_dfgs()
    params = ExplorationParams(max_iterations=80, restarts=2,
                               max_rounds=6)

    def explore_with(obs):
        explorer = MultiIssueExplorer(MachineConfig(2, "4/2"),
                                      params=params, seed=17, obs=obs)
        start = time.perf_counter()
        results = explorer.explore_many(dfgs, jobs=1)
        return results, time.perf_counter() - start

    def measure():
        return explore_with(NULL_OBSERVER)

    plain, plain_s = run_once(benchmark, measure)

    sink = _CountingSink()
    observed_obs = Observer(sinks=[sink])
    observed, observed_s = explore_with(observed_obs)

    # The layer must not perturb results in either mode.
    assert [r.final_cycles for r in plain] \
        == [r.final_cycles for r in observed]

    # Cost of one disabled hook: the `if obs:` truth test itself.
    loops = 1_000_000
    null_hook_s = timeit.timeit(
        "1 if obs else 0", globals={"obs": NULL_OBSERVER},
        number=loops) / loops

    crossings = _hook_crossings(observed_obs)
    disabled_overhead_s = crossings * null_hook_s
    share = disabled_overhead_s / plain_s

    payload = {
        "workloads": list(WORKLOADS),
        "blocks": len(dfgs),
        "jobs": jobs_environment(1),
        "plain_s": round(plain_s, 3),
        "observed_s": round(observed_s, 3),
        "hook_crossings": crossings,
        "null_hook_ns": round(null_hook_s * 1e9, 2),
        "disabled_overhead_s": round(disabled_overhead_s, 6),
        "disabled_overhead_share": round(share, 6),
        "max_overhead_share": MAX_OVERHEAD,
    }
    with open(OUT_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print("obs overhead: {} hook crossings x {:.1f}ns = {:.4f}s "
          "({:.3%} of {:.2f}s serial run)".format(
              crossings, null_hook_s * 1e9, disabled_overhead_s,
              share, plain_s))

    assert share <= MAX_OVERHEAD
