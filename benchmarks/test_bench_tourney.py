"""Engine-tournament benchmark: every registered engine races on the
crc32 + bitcount hot blocks under an equal per-block evaluation budget.

Two contracts:

* the **race** — each engine is stopped after ``BUDGET`` uncached
  candidate evaluations per block (cache hits are free; see
  :mod:`repro.eval.tournament` for the fairness argument) and its
  standings (best cycles, evaluations used, wall time, cache hit rate)
  land in ``BENCH_tourney.json``;
* the **parity gate** — ``engine="aco"`` must remain bit-identical to
  the historical ``MultiIssueExplorer``: an *unbudgeted* ACO run over
  the golden workload of ``test_bench_sched.py`` must reproduce
  ``GOLDEN_DIGEST`` exactly.  Unlike the wall-clock gates this is a
  determinism contract, so it is asserted on every run (strict mode
  included) and its verdict is recorded in the JSON payload.
"""

import hashlib
import json
import os

from repro.config import ExplorationParams
from repro.core.flow import ISEDesignFlow
from repro.engines.aco import AcoEngine
from repro.eval.tournament import (render_tournament, run_tournament,
                                   tournament_record)
from repro.ir.passes.pipeline import optimize
from repro.sched.machine import MachineConfig
from repro.workloads import get_workload

from conftest import run_once
from test_bench_sched import GOLDEN_DIGEST, _hot_dfgs, _signature

WORKLOADS = ("crc32", "bitcount")
BUDGET = 40                       # uncached evaluations per block
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_tourney.json")


def _tourney_dfgs():
    """Hot explorable blocks of the tournament workloads at -O3."""
    machine = MachineConfig(2, "4/2")
    dfgs = []
    for name in WORKLOADS:
        program, args = get_workload(name).build()
        flow = ISEDesignFlow(machine, seed=3, max_blocks=2)
        blocks = flow.profile_blocks(optimize(program, "O3"), args=args)
        dfgs.extend(b.dfg for b in flow._select_hot_blocks(blocks))
    return dfgs


def test_bench_tourney(benchmark):
    dfgs = _tourney_dfgs()
    machine = MachineConfig(2, "4/2")
    params = ExplorationParams(max_iterations=40, restarts=2,
                               max_rounds=4)

    def measure():
        return run_tournament(dfgs, machine, budget=BUDGET,
                              params=params, seed=17, batch=1)

    result = run_once(benchmark, measure)

    # Every registered engine raced, under the same per-block meter.
    assert len(result.rows) >= 3
    for row in result.rows:
        assert row.evaluations <= BUDGET * len(dfgs)
        assert row.best_cycles <= row.base_cycles

    # ACO parity gate: the default engine, unbudgeted, still reproduces
    # the pre-refactor golden digest on the sched bench's workload.
    golden = _hot_dfgs()
    engine = AcoEngine(MachineConfig(2, "4/2"),
                       params=ExplorationParams(max_iterations=80,
                                                restarts=4, max_rounds=6),
                       seed=17, batch=1)
    sigs = [_signature(r) for r in engine.explore_many(golden, jobs=1)]
    digest = hashlib.sha256(repr(sigs).encode()).hexdigest()
    digest_ok = digest == GOLDEN_DIGEST

    payload = tournament_record(result)
    payload["workloads"] = list(WORKLOADS)
    payload["params"] = {"max_iterations": params.max_iterations,
                         "restarts": params.restarts,
                         "max_rounds": params.max_rounds}
    payload["aco_golden_digest_ok"] = digest_ok
    with open(OUT_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print(render_tournament(result))
    print("aco golden digest: {}".format("ok" if digest_ok else
                                         "DIVERGED"))
    assert digest_ok, "engine=\"aco\" diverged from GOLDEN_DIGEST"
