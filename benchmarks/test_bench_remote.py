"""Remote evalcache + sharded sweep benchmark: parity and warm-up.

One in-process ``EvalCacheServer`` on a loopback socket plays the
fleet-shared cache; the bench then runs the same small sweep grid
(crc32 + bitcount × two machines × two budgets) through five phases:

* ``local``  — remote tier disabled: the serial reference digest every
  later phase must reproduce bit-identically;
* ``cold``   — remote enabled against an *empty* server: pays the
  publication cost (puts) on top of the exploration;
* ``warm``   — a fresh "host" (new disk-cache dir, empty local tiers)
  against the now-populated server: remote hits replace recomputation;
* ``shards`` — the grid split ``0/2`` + ``1/2`` by cell fingerprint
  and merged: the merge digest must equal the serial digest;
* ``killed`` — the server is stopped by a timer *mid-sweep*: the
  client's circuit breaker degrades every probe to a local miss and
  the digest still matches (graceful-degradation acceptance).

``BENCH_remote.json`` records wall-clock per phase, the warm/cold
speedup, the remote hit rate and the parity verdicts.  Wall-clock
gates (warm faster than cold, nonzero warm hit rate) are asserted
under ``REPRO_BENCH_STRICT=1``; digest parity is asserted always.
"""

import json
import os
import threading
import time

from repro.dist.client import remote_cache, remote_counters, \
    reset_remote_cache
from repro.dist.server import EvalCacheServer
from repro.dist.sweep import merge_sweeps, run_sweep

from conftest import run_once

OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_remote.json")

WORKLOADS = ("crc32", "bitcount")
MACHINES = (("4/2", 2), ("8/4", 3))
BUDGETS = (20_000.0, 320_000.0)
EFFORT = dict(iterations=24, restarts=2)


def _sweep(**kwargs):
    return run_sweep(workloads=WORKLOADS, machines=MACHINES,
                     budgets=BUDGETS, seed=17, **EFFORT, **kwargs)


def test_bench_remote_sweep(benchmark, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_REMOTE_TIMEOUT", "5.0")

    def host(name):
        """Each phase runs as a fresh 'host': empty local disk cache."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / name))

    def timed(fn):
        start = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - start

    server = EvalCacheServer(port=0)
    server.start_in_thread()

    def measure():
        phases = {}

        monkeypatch.delenv("REPRO_REMOTE_CACHE", raising=False)
        reset_remote_cache()
        host("local")
        local, phases["local_s"] = timed(_sweep)

        monkeypatch.setenv("REPRO_REMOTE_CACHE", server.address)
        reset_remote_cache()
        host("cold")
        cold, phases["cold_s"] = timed(_sweep)
        cold_tallies = remote_counters()

        host("warm")
        warm, phases["warm_s"] = timed(_sweep)
        warm_tallies = {
            name: remote_counters()[name] - cold_tallies[name]
            for name in cold_tallies
        }

        host("shard0")
        part0, phases["shard0_s"] = timed(lambda: _sweep(shard=(0, 2)))
        host("shard1")
        part1, phases["shard1_s"] = timed(lambda: _sweep(shard=(1, 2)))
        merged = merge_sweeps([part0, part1])

        # Kill the server shortly after the sweep starts: the breaker
        # must absorb every subsequent probe without changing results.
        monkeypatch.setenv("REPRO_REMOTE_TIMEOUT", "0.1")
        reset_remote_cache()
        host("killed")
        killer = threading.Timer(0.05, server.stop)
        killer.start()
        try:
            killed, phases["killed_s"] = timed(_sweep)
        finally:
            killer.cancel()
        killed_errors = remote_counters()["errors"] \
            + remote_counters()["skipped"]
        reset_remote_cache()
        return (phases, local, cold, warm, merged, killed,
                warm_tallies, killed_errors)

    try:
        (phases, local, cold, warm, merged, killed, warm_tallies,
         killed_errors) = run_once(benchmark, measure)
    finally:
        server.stop()
        reset_remote_cache()

    # Hard contracts, asserted on any host: every phase reproduces the
    # serial reference digest bit-identically.
    reference = local.digest
    assert cold.digest == reference, "cold remote sweep broke parity"
    assert warm.digest == reference, "warm remote sweep broke parity"
    assert merged.digest == reference, "sharded merge broke parity"
    assert killed.digest == reference, "server kill changed results"

    warm_gets = warm_tallies["gets"] + warm_tallies["blob_gets"]
    warm_hits = warm_tallies["hits"] + warm_tallies["blob_hits"]
    hit_rate = warm_hits / warm_gets if warm_gets else 0.0
    speedup = phases["cold_s"] / phases["warm_s"] \
        if phases["warm_s"] > 0 else 0.0
    payload = {
        "grid": {
            "workloads": list(WORKLOADS),
            "machines": [list(m) for m in MACHINES],
            "budgets": list(BUDGETS),
            "effort": EFFORT,
        },
        "phases_s": {name: round(seconds, 3)
                     for name, seconds in phases.items()},
        "warm_speedup_vs_cold": round(speedup, 3),
        "warm_remote": {
            "gets": warm_gets,
            "hits": warm_hits,
            "hit_rate": round(hit_rate, 3),
            "puts": warm_tallies["puts"],
        },
        "killed_server_errors_absorbed": killed_errors,
        "golden_digest": reference,
        "parity": {
            "cold": cold.digest == reference,
            "warm": warm.digest == reference,
            "sharded_merge": merged.digest == reference,
            "killed": killed.digest == reference,
        },
        "rows": len(local.rows),
    }
    with open(OUT_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print("remote: local {:.2f}s | cold {:.2f}s | warm {:.2f}s "
          "({:.2f}x cold, {:.0%} hit rate) | kill absorbed {} "
          "error(s)/skip(s)".format(
              phases["local_s"], phases["cold_s"], phases["warm_s"],
              speedup, hit_rate, killed_errors))

    assert warm_gets > 0                   # the warm host probed remote
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        # Reference-host gates: the warm remote cache must pay for
        # itself and actually answer probes.
        assert phases["warm_s"] < phases["cold_s"]
        assert hit_rate >= 0.5
